"""The cycle-level EOLE pipeline simulator.

This is the timing model tying every substrate together.  It is a trace-driven,
correct-path, cycle-by-cycle model of the machine described in Table 1 of the paper,
optionally augmented with value prediction (validation at commit, squash recovery) and
with the EOLE Early/Late Execution blocks.

Each simulated cycle processes, in order:

1. **completions** — µ-ops finishing execution this cycle (branch resolution, memory
   ordering checks);
2. **commit / LE-VT** — in-order retirement of up to ``commit_width`` µ-ops, including
   Late Execution, prediction validation, predictor training and squash on value
   misprediction;
3. **issue** — age-ordered select of up to ``issue_width`` ready µ-ops from the IQ,
   bounded by the functional-unit pool;
4. **rename/dispatch** — up to ``rename_width`` µ-ops leave the front-end, get renamed,
   classified for Early/Late Execution, and allocated ROB/IQ/LSQ/PRF resources;
5. **fetch** — up to ``fetch_width`` µ-ops enter the front-end, consulting the branch
   predictor and the value predictor.

The main loop is **event-driven**: after each simulated cycle the scheduler computes
the earliest future cycle at which *any* stage could make progress or mutate state (a
completion firing, the ROB head's minimum commit cycle, the issue scan's re-arm cycle,
the front-end head's dispatch-maturity deadline, the fetch resume point) and jumps
``cycle`` directly there, crediting the skipped span in bulk to the per-cycle counters
(``stats.cycles``, plus the recurring dispatch structural-stall counter when the
front-end is blocked on a full ROB/LSQ/PRF bank).  The result is byte-identical to
stepping every cycle — ``REPRO_EVENT_DRIVEN=0`` retains the cycle-stepping loop as the
reference, and ``tests/trace/test_simulation_determinism.py`` compares the two across a
configuration × workload grid.

See DESIGN.md §5 for the modelling assumptions (wrong-path effects, speculative
scheduling) and their justification, and docs/performance.md for the event-wheel
design and its dead-cycle/stat-crediting rules.
"""

from __future__ import annotations

import gc
import os
from collections import deque
from collections.abc import Iterable, Iterator

from repro.bpu.btb import BranchTargetBuffer, ReturnAddressStack
from repro.bpu.history import GlobalHistory
from repro.bpu.tage import TAGEBranchPredictor
from repro.bpu.unit import BranchPredictionUnit
from repro.core.early_execution import EarlyExecutionBlock
from repro.core.late_execution import LateExecutionBlock
from repro.errors import SimulationError
from repro.isa.emulator import ArchState, Emulator
from repro.isa.flags import approximate_flags, flags_match_for_validation
from repro.isa.opcode import OpClass
from repro.isa.program import Program
from repro.isa.trace import DynInst
from repro.mem.hierarchy import MemoryHierarchy
from repro.ooo.functional_units import FunctionalUnitPool
from repro.ooo.inflight import InflightOp, InflightOpPool, UNKNOWN_CYCLE
from repro.ooo.issue_queue import IssueQueue
from repro.ooo.lsq import LoadStoreQueue
from repro.ooo.registers import BankedRegisterFile, PRFPortBudget
from repro.ooo.rob import ReorderBuffer
from repro.ooo.store_sets import StoreSets
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stats import SimStats, SimulationResult
from repro.trace.encoding import CapturedTrace

#: Environment variable: ``0`` selects the cycle-stepping reference loop instead of
#: the event-driven scheduler (both produce byte-identical results).
EVENT_DRIVEN_ENV_VAR = "REPRO_EVENT_DRIVEN"


def event_driven_enabled() -> bool:
    """True unless ``REPRO_EVENT_DRIVEN=0`` selects the cycle-stepping reference."""
    return os.environ.get(EVENT_DRIVEN_ENV_VAR, "1") != "0"


class Simulator:
    """Cycle-level simulator of one machine configuration running one workload."""

    #: Safety factor: a run is aborted if it exceeds this many cycles per committed µ-op.
    _DEADLOCK_CYCLES_PER_UOP = 400
    _DEADLOCK_SLACK_CYCLES = 200_000

    def __init__(
        self,
        config: PipelineConfig,
        program: Program,
        max_uops: int = 20_000,
        warmup_uops: int = 0,
        arch_state: ArchState | None = None,
        workload_name: str | None = None,
        trace: "CapturedTrace | Iterable[DynInst] | None" = None,
    ) -> None:
        if warmup_uops >= max_uops:
            raise SimulationError("warmup_uops must be smaller than max_uops")
        self.config = config
        self.program = program
        self.max_uops = max_uops
        self.warmup_uops = warmup_uops
        self.workload_name = workload_name if workload_name is not None else program.name

        # Architectural trace source.  Fetch runs ahead of commit by at most the ROB
        # plus the front-end, so a bounded-slack emulator limit is sufficient.  A
        # pre-captured trace (repro.trace) replaces the inline emulator entirely; it
        # must cover at least the same bounded-slack window to be bit-equivalent.
        if trace is not None:
            if isinstance(trace, CapturedTrace):
                self._trace: Iterator[DynInst] = trace.replay()
            else:
                self._trace = iter(trace)
        else:
            emulator_budget = max_uops + config.rob_size + config.frontend_capacity + 64
            self._trace = Emulator(program, state=arch_state).run(emulator_budget)
        self._trace_exhausted = False
        self._replay: deque[DynInst] = deque()

        # Substrates.
        self.history = GlobalHistory()
        self.bpu = BranchPredictionUnit(
            tage=TAGEBranchPredictor(
                bimodal_entries=config.tage_bimodal_entries,
                tagged_entries=config.tage_tagged_entries,
                num_components=config.tage_components,
            ),
            btb=BranchTargetBuffer(entries=config.btb_entries),
            ras=ReturnAddressStack(entries=config.ras_entries),
            history=self.history,
        )
        self.predictor = config.make_predictor() if config.value_prediction else None
        self.hierarchy = MemoryHierarchy(config.memory)
        self.rob = ReorderBuffer(config.rob_size)
        self.iq = IssueQueue(config.iq_size)
        self.lsq = LoadStoreQueue(config.lq_size, config.sq_size)
        self.store_sets = StoreSets(config.store_sets_ssit, config.store_sets_lfst)
        self.fu_pool = FunctionalUnitPool(config.functional_units)
        self.prf = BankedRegisterFile(
            num_banks=config.prf_banks,
            total_registers=config.prf_registers,
            budget=PRFPortBudget(
                ee_write_ports_per_bank=config.ee_write_ports_per_bank,
                levt_read_ports_per_bank=config.levt_read_ports_per_bank,
            ),
        )
        self.early_block = EarlyExecutionBlock(config.eole.early)
        self.late_block = LateExecutionBlock(config.eole.late)

        # Derived constants hoisted out of the per-cycle loops.
        self._commit_extra = config.writeback_to_commit_latency + (
            1 if config.has_levt_stage else 0
        )
        self._levt_ports_limited = (
            config.has_levt_stage and config.levt_read_ports_per_bank is not None
        )

        # Issue-scan gating: IQ readiness only changes on discrete events — a
        # completion firing, a dispatched entry maturing past dispatch_to_issue
        # latency, a squash flipping dependence flags, or functional-unit/width
        # pressure from a previous scan.  ``_iq_scan_from`` is the earliest cycle at
        # which a select could find new work; scans before it are provably empty and
        # are skipped (bit-identical: a skipped scan mutates no state and counts no
        # statistics, exactly like an empty walk).
        self._iq_scan_from = 0

        # Pipeline state.
        self.cycle = 0
        self.stats = SimStats()
        self._warmup_snapshot: SimStats | None = None
        self._warmup_done = warmup_uops == 0
        if self._warmup_done:
            self._warmup_snapshot = SimStats()
        self._frontend: deque[InflightOp] = deque()
        self._completions: dict[int, list[InflightOp]] = {}
        self._rename_map: dict[int, InflightOp] = {}
        self._previous_dispatch_group: list[InflightOp] = []
        self._fetch_resume_cycle = 0
        self._fetch_blocked_on: InflightOp | None = None
        self._finished = False

        # Pooled µ-op records: fetch acquires, retire/squash give back (retire goes
        # through a barrier — younger IQ entries keep reading their producers).
        self.pool = InflightOpPool()
        self._last_dispatched_seq = -1

        # Event-driven scheduling state.  ``_dispatch_stall_reason`` is non-None
        # exactly when dispatch ended the cycle stalled on a structural resource with
        # *zero* progress — a state that provably recurs (and counts one stall per
        # cycle) until some other pipeline event frees the resource, which is what
        # lets the scheduler credit those cycles in bulk instead of ticking them.
        self._event_driven = event_driven_enabled()
        self._dispatch_stall_reason: str | None = None

    # ================================================================== public API
    def run(self) -> SimulationResult:
        """Run the simulation to completion and return its result."""
        deadlock_limit = (
            self.max_uops * self._DEADLOCK_CYCLES_PER_UOP + self._DEADLOCK_SLACK_CYCLES
        )
        # The simulation allocates no reference cycles on its hot paths (records are
        # pooled, prediction/outcome objects are acyclic), so the generational
        # collector's periodic heap walks are pure overhead while it runs.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self._event_driven:
                self._run_event_driven(deadlock_limit)
            else:
                while not self._finished:
                    self._step()
                    if self.cycle > deadlock_limit:
                        self._raise_deadlock(deadlock_limit)
        finally:
            if gc_was_enabled:
                gc.enable()
        return self._build_result()

    def _raise_deadlock(self, deadlock_limit: int) -> None:
        raise SimulationError(
            f"simulation exceeded {deadlock_limit} cycles "
            f"({self.stats.committed_uops} µ-ops committed): likely deadlock"
        )

    def _run_event_driven(self, deadlock_limit: int) -> None:
        """The event-wheel main loop: step on event cycles, jump over dead spans.

        Invariant: a skipped cycle is one where the cycle-stepping loop would only
        have incremented ``stats.cycles`` (and, when dispatch is parked on a
        structural stall, one stall counter) — every candidate source in
        :meth:`_next_event_cycle` is conservative, so any cycle that could mutate
        other state is stepped normally.
        """
        while not self._finished:
            self._step()
            if self.cycle > deadlock_limit:
                self._raise_deadlock(deadlock_limit)
            if self._finished:
                break
            target = self._next_event_cycle()
            if target > deadlock_limit + 1:
                # No event before the deadlock horizon: step once at the horizon so
                # the reference loop's failure mode (and cycle accounting) is kept.
                target = deadlock_limit + 1
            gap = target - self.cycle - 1
            if gap > 0:
                self._skip_dead_cycles(gap)

    #: Sentinel for "no known future event" (also used by the issue-scan gating).
    _NEVER = 1 << 62

    def _next_event_cycle(self) -> int:
        """Earliest future cycle at which any pipeline stage could make progress.

        Candidate sources, mirroring the stage order of :meth:`_step`:

        * **completions** — the earliest pending entry of the completion wheel;
        * **commit** — if the ROB head has executed, its minimum commit cycle
          (``complete_cycle`` plus the writeback/LE-VT latency); a head already past
          it is stalled on per-cycle-counted width/port/ALU limits and re-arms next
          cycle.  A head that has *not* executed needs a completion or an issue
          first, which the other candidates cover;
        * **issue** — ``_iq_scan_from``, the scan re-arm cycle maintained by
          :meth:`_issue` (dispatch-maturity deadline or an event having lowered it);
        * **dispatch** — the front-end head's ``dispatch_ready_cycle``; a head that
          is already dispatch-ready re-arms next cycle *unless* the stage is parked
          on a recurring structural stall, which only another stage's event can
          clear (the skipped span is then credited to that stall counter);
        * **fetch** — the fetch resume point, whenever fetch is unblocked, the trace
          has µ-ops left and the front-end has room (fetch otherwise resumes only as
          a consequence of one of the other events).
        """
        cycle = self.cycle
        nxt = self._NEVER
        completions = self._completions
        if completions:
            nxt = min(completions)
        head = self.rob.head()
        if head is not None and head.executed:
            ready = head.complete_cycle + self._commit_extra
            candidate = ready if ready > cycle else cycle + 1
            if candidate < nxt:
                nxt = candidate
        scan = self._iq_scan_from
        if scan != self._NEVER:
            candidate = scan if scan > cycle else cycle + 1
            if candidate < nxt:
                nxt = candidate
        frontend = self._frontend
        if frontend:
            ready = frontend[0].dispatch_ready_cycle
            if ready > cycle:
                if ready < nxt:
                    nxt = ready
            elif self._dispatch_stall_reason is None:
                if cycle + 1 < nxt:
                    nxt = cycle + 1
        if (
            self._fetch_blocked_on is None
            and (self._replay or not self._trace_exhausted)
            and len(frontend) < self.config.frontend_capacity
        ):
            resume = self._fetch_resume_cycle
            candidate = resume if resume > cycle else cycle + 1
            if candidate < nxt:
                nxt = candidate
        return nxt

    def _skip_dead_cycles(self, gap: int) -> None:
        """Jump over ``gap`` provably-dead cycles, crediting per-cycle counters.

        A dead cycle, stepped by the reference loop, would increment
        ``stats.cycles``, clear the previous-dispatch bypass group, and — when the
        front-end head is dispatch-ready but structurally blocked — count exactly one
        dispatch stall against the blocking resource.  Everything else is untouched
        by construction (see :meth:`_next_event_cycle`), so those effects are applied
        in bulk here.
        """
        self.cycle += gap
        self.stats.cycles += gap
        self._previous_dispatch_group = []
        reason = self._dispatch_stall_reason
        if reason is not None:
            # Mirrors _count_dispatch_stall (the per-cycle reference), credited gap
            # cycles at once.
            if reason == "rob":
                self.stats.rob_full_stalls += gap
            elif reason == "lsq":
                self.stats.lsq_full_stalls += gap
            elif reason == "prf":
                self.stats.prf_bank_stalls += gap
                self.prf.record_bank_full_stall(gap)
            else:  # pragma: no cover - _dispatch only parks on the reasons above
                raise SimulationError(f"unknown dispatch stall reason {reason!r}")

    def _step(self) -> None:
        """Advance the machine by one cycle.

        Each stage call is preceded by an inline guard replicating that stage's own
        no-work early-exit, so a cycle in which a stage provably does nothing pays
        one comparison instead of a call (the stages keep their early-exits and
        remain callable on their own — the guards are pure short-circuits).
        """
        cycle = self.cycle + 1
        self.cycle = cycle
        self.stats.cycles += 1
        if self._completions and cycle in self._completions:
            self._process_completions()
            if self._finished:
                return
        rob_entries = self.rob._entries
        if rob_entries:
            head = rob_entries[0]
            if head.executed and cycle >= head.complete_cycle + self._commit_extra:
                self._commit()
                if self._finished:
                    return
        if cycle >= self._iq_scan_from:
            self._issue()
        frontend = self._frontend
        if frontend and frontend[0].dispatch_ready_cycle <= cycle:
            self._dispatch()
        else:
            self._previous_dispatch_group = []
            self._dispatch_stall_reason = None
        if (
            self._fetch_blocked_on is None
            and cycle >= self._fetch_resume_cycle
            and len(frontend) < self.config.frontend_capacity
        ):
            self._fetch()
        if (
            self._trace_exhausted
            and not self._replay
            and not frontend
            and not rob_entries
        ):
            self._finished = True

    # ================================================================== completion
    def _process_completions(self) -> None:
        ops = self._completions.pop(self.cycle, None)
        if not ops:
            return
        for op in ops:
            op.in_completion_wheel = False
            if op.iq_waiters and not op.squashed and self.cycle < self._iq_scan_from:
                # The completed producer has waiting IQ consumers: they may wake
                # this very cycle.  (Completions nobody renamed against — stores,
                # branches, dead values — never need to re-arm the scan: store-set
                # dependences release at store *issue*, not completion.)
                self._iq_scan_from = self.cycle
            if op.squashed:
                # A squashed µ-op's stale wheel entry was its last reference; its
                # record is recyclable the moment the entry pops.
                self.pool.release(op)
                continue
            op.executed = True
            if op is self._fetch_blocked_on:
                self._resume_fetch_after_resolution()
            if op.uop.is_store:
                self.store_sets.store_executed(op)
                violator = self.lsq.detect_violation(op)
                if violator is not None:
                    self.stats.memory_order_violations += 1
                    self.store_sets.train_violation(violator.pc, op.pc)
                    self._squash_from(violator.seq)

    def _resume_fetch_after_resolution(self) -> None:
        self._fetch_blocked_on = None
        self._fetch_resume_cycle = max(
            self._fetch_resume_cycle, self.cycle + self.config.branch_resolution_extra
        )

    # ================================================================== commit / LE-VT
    def _minimum_commit_cycle(self, op: InflightOp) -> int:
        extra = 1 if self.config.has_levt_stage else 0
        return op.complete_cycle + self.config.writeback_to_commit_latency + extra

    def _commit(self) -> None:
        committed = 0
        late_alus_used = 0
        cycle = self.cycle
        commit_extra = self._commit_extra
        late_alu_limit = self.late_block.config.alus
        # The head peek/pop pair runs once per committed µ-op: the deque is read
        # directly (same entries ReorderBuffer.head/pop_head expose).
        rob_entries = self.rob._entries
        while committed < self.config.commit_width:
            if not rob_entries:
                break
            op = rob_entries[0]
            if not op.executed:
                break
            if cycle < op.complete_cycle + commit_extra:
                break
            if op.late_executed:
                if late_alus_used >= late_alu_limit:
                    self.stats.late_alu_stalls += 1
                    break
            if self._levt_ports_limited:
                banks = self.late_block.levt_read_banks(op)
                if not self.prf.try_levt_reads(banks, cycle):
                    self.stats.levt_port_stalls += 1
                    break

            # The µ-op retires this cycle.
            rob_entries.popleft()
            op.commit_cycle = cycle
            committed += 1
            if op.late_executed:
                late_alus_used += 1
            self._retire(op)
            if self._finished:
                return
            squashed = self._validate_and_train(op)
            if squashed:
                break

    def _retire(self, op: InflightOp) -> None:
        """Bookkeeping common to every retiring µ-op."""
        uop = op.uop
        stats = self.stats
        stats.committed_uops += 1
        if uop.is_branch:
            stats.committed_branches += 1
            if uop.is_conditional_branch:
                stats.committed_cond_branches += 1
        if uop.is_load:
            stats.committed_loads += 1
            if op.load_forwarded:
                stats.forwarded_loads += 1
        if uop.is_store:
            stats.committed_stores += 1
            if op.dyn.addr is not None:
                self.hierarchy.store(op.dyn.addr, op.pc, self.cycle)
            # Scrub any remaining LFST reference before the record is recycled
            # (observably a no-op: a retired store already has ``issued`` set).
            self.store_sets.store_retired(op)
        if uop.vp_eligible:
            stats.committed_vp_eligible += 1
        if op.early_executed:
            stats.early_executed += 1
        elif op.late_executed:
            if uop.is_conditional_branch:
                stats.late_resolved_branches += 1
            else:
                stats.late_executed_alu += 1
        if op.pred_used:
            stats.predictions_used += 1

        # Free the rename mapping and the physical register.
        for dst in uop.dst_regs:
            if self._rename_map.get(dst) is op:
                del self._rename_map[dst]
        if uop.dst is not None:
            self.prf.release(op.dest_bank)
        if uop.is_memory:
            self.lsq.remove(op)

        # Branch predictor training and late branch resolution.
        if uop.is_conditional_branch and op.branch_outcome is not None:
            self.bpu.train(op.dyn, op.branch_outcome)
            if op.branch_outcome.mispredicted:
                stats.branch_mispredictions += 1
                if op.branch_outcome.high_confidence:
                    stats.high_confidence_branch_mispredictions += 1
            if op is self._fetch_blocked_on:
                # A late-resolved (LE/VT) mispredicted branch unblocks fetch at commit.
                self._resume_fetch_after_resolution()
        elif (
            uop.is_branch
            and op.branch_outcome is not None
            and op.branch_outcome.mispredicted
        ):
            stats.branch_mispredictions += 1

        if not self._warmup_done and stats.committed_uops >= self.warmup_uops:
            self._warmup_snapshot = stats.copy()
            self._warmup_done = True
        if stats.committed_uops >= self.max_uops:
            self._finished = True

        # Park the record for recycling.  Younger IQ entries renamed against this
        # µ-op keep reading its timing fields until they issue, and the LE/VT port
        # model reads its destination bank when they commit — all of them were
        # dispatched by now, so the current dispatch high-water mark is the barrier.
        self.pool.retire(op, self._last_dispatched_seq)

    def _validate_and_train(self, op: InflightOp) -> bool:
        """Prediction validation + predictor training; returns True if a squash occurred."""
        if self.predictor is None or not op.uop.vp_eligible or op.dyn.result is None:
            return False
        actual = op.dyn.result
        value_correct = self.predictor.validate_and_train(op.pc, actual, op.prediction)
        if not op.pred_used:
            return False
        flags_ok = True
        if op.uop.sets_flags and op.dyn.flags_result is not None and op.prediction is not None:
            flags_ok = flags_match_for_validation(
                op.dyn.flags_result, approximate_flags(op.prediction.value)
            )
            if value_correct and not flags_ok:
                self.stats.flag_only_mispredictions += 1
        if value_correct and flags_ok:
            return False
        # Value misprediction: the offending µ-op retires with the architectural value,
        # everything younger is squashed and re-fetched (Section 3.1: pipeline squash).
        self.stats.value_mispredictions += 1
        self._squash_from(op.seq + 1)
        return True

    # ================================================================== issue / execute
    def _operand_ready(self, op: InflightOp, cycle: int) -> bool:
        for producer in op.producers:
            if producer is None:
                continue
            available = producer.avail_cycle
            if available == UNKNOWN_CYCLE or available > cycle:
                return False
        return True

    def _is_ready(self, op: InflightOp, cycle: int) -> bool:
        if cycle < op.dispatch_cycle + self.config.dispatch_to_issue_latency:
            return False
        if not self._operand_ready(op, cycle):
            return False
        if op.uop.is_load:
            dependence = op.mem_dependence
            if dependence is not None and not dependence.squashed and not dependence.issued:
                return False
        return True

    def _execution_latency(self, op: InflightOp) -> int:
        return op.uop.latency

    def _issue(self) -> None:
        cycle = self.cycle
        if cycle < self._iq_scan_from:
            return
        # ``select_ready`` inlines the ``_is_ready``/``_execution_latency`` rules
        # above (kept as the reference implementation) into the IQ walk.
        fu_pool = self.fu_pool
        rejects_before = fu_pool.structural_rejects
        issue_width = self.config.issue_width
        selected = self.iq.select_ready(
            cycle,
            issue_width,
            fu_pool,
            self.config.dispatch_to_issue_latency,
        )
        if selected:
            for op in selected:
                self._start_execution(op)
            # A rescan next cycle is only needed when this select could have left
            # newly-issuable work behind: the width ran out (unexamined entries may
            # be ready), a ready µ-op lost its functional unit, or an issued store
            # released a store-set dependence (dependent loads become ready at
            # once).  Otherwise every remaining entry is immature or waiting on a
            # completion/dispatch/squash event, exactly as in the empty-scan case.
            rescan_next = (
                len(selected) == issue_width
                or fu_pool.structural_rejects != rejects_before
            )
            if not rescan_next:
                for op in selected:
                    if op.uop.is_store:
                        rescan_next = True
                        break
            if rescan_next:
                self._iq_scan_from = cycle + 1
            else:
                # The width was not exhausted, so the walk covered the whole queue:
                # its observed earliest maturity deadline is the next scan cycle.
                mature_at = self.iq.next_immature_cycle
                self._iq_scan_from = mature_at if mature_at is not None else self._NEVER
        elif fu_pool.structural_rejects != rejects_before:
            # A ready µ-op lost its functional unit; retry when the pool resets.
            self._iq_scan_from = cycle + 1
        else:
            # Nothing can issue until an event (completion/dispatch/squash) fires —
            # except entries still inside the dispatch-to-issue latency, whose
            # maturity is a known deadline no event announces.  Re-arm on it
            # (tracked as a byproduct of the walk that just found nothing).
            mature_at = self.iq.next_immature_cycle
            self._iq_scan_from = mature_at if mature_at is not None else self._NEVER

    def _start_execution(self, op: InflightOp) -> None:
        uop = op.uop
        cycle = self.cycle
        if uop.is_load:
            forwarding_store = self.lsq.forwarding_store(op)
            if forwarding_store is not None:
                op.load_forwarded = True
                memory_latency = 2
            else:
                memory_latency = self.hierarchy.load(op.dyn.addr, op.pc, cycle)
            op.complete_cycle = cycle + 1 + memory_latency
        elif uop.is_store:
            op.complete_cycle = cycle + 1
        else:
            op.complete_cycle = cycle + uop.latency
        if not op.pred_used:
            # Predicted results stay available from dispatch; everything else
            # becomes consumable when execution completes.
            op.avail_cycle = op.complete_cycle
        op.in_completion_wheel = True
        completions = self._completions
        wheel_slot = completions.get(op.complete_cycle)
        if wheel_slot is None:
            completions[op.complete_cycle] = [op]
        else:
            wheel_slot.append(op)

    # ================================================================== rename / dispatch
    def _dispatch(self) -> None:
        cycle = self.cycle
        frontend = self._frontend
        self._dispatch_stall_reason = None
        if not frontend or frontend[0].dispatch_ready_cycle > cycle:
            self._previous_dispatch_group = []
            return
        config = self.config
        rename_width = config.rename_width
        multi_bank = config.prf_banks > 1
        rename_map = self._rename_map
        rob = self.rob
        lsq = self.lsq
        prf = self.prf
        stats = self.stats
        # Hot-path views of the structural resources (the methods on ReorderBuffer /
        # LoadStoreQueue / BankedRegisterFile remain the reference implementations;
        # phase A/B runs once per dispatched µ-op and inlines them).
        rob_entries = rob._entries
        rob_capacity = rob.capacity
        lsq_loads = lsq._loads
        lsq_stores = lsq._stores
        lq_capacity = lsq.lq_capacity
        sq_capacity = lsq.sq_capacity
        prf_allocated = prf._allocated
        group: list[InflightOp] = []
        # Phase A/B: pull dispatch-ready µ-ops and rename them.  Intra-group
        # producers are visible through ``rename_map`` itself — every destination is
        # written to it immediately and nothing is deleted mid-group, so a separate
        # local overlay would always agree with it.
        while len(group) < rename_width and frontend:
            op = frontend[0]
            if op.dispatch_ready_cycle > cycle:
                break
            uop = op.uop
            # Structural space checks (see _structural_space_for_op, kept as the
            # reference implementation).  A stall hit before *any* progress parks
            # the stage: the identical check fails every cycle (one stall counted
            # per cycle) until another stage's event frees the resource, which the
            # event scheduler exploits by crediting skipped spans in bulk.
            if len(rob_entries) >= rob_capacity:
                stats.rob_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "rob"
                break
            if uop.is_memory and (
                len(lsq_loads) >= lq_capacity
                if uop.is_load
                else len(lsq_stores) >= sq_capacity
            ):
                stats.lsq_full_stalls += 1
                if not group:
                    self._dispatch_stall_reason = "lsq"
                break
            if uop.dst is not None and multi_bank and not prf.can_allocate():
                stats.prf_bank_stalls += 1
                prf.record_bank_full_stall()
                if not group:
                    self._dispatch_stall_reason = "prf"
                break
            frontend.popleft()
            # Rename (unrolled for the dominant 0/1/2-source shapes).
            sources = uop.src_regs
            if not sources:
                producers: tuple[InflightOp | None, ...] = ()
            elif len(sources) == 1:
                producers = (rename_map.get(sources[0]),)
            elif len(sources) == 2:
                reg_a, reg_b = sources
                producers = (rename_map.get(reg_a), rename_map.get(reg_b))
            else:
                producers = tuple(rename_map.get(reg) for reg in sources)
            op.producers = producers
            for dst in uop.dst_regs:
                rename_map[dst] = op
            group.append(op)
            # Structural allocation happens immediately so the next iteration's space
            # checks see it (ROB/LSQ/PRF are per-µ-op resources, not per-group).
            rob_entries.append(op)
            if len(rob_entries) > rob.peak_occupancy:
                rob.peak_occupancy = len(rob_entries)
            if uop.is_memory:
                if uop.is_load:
                    lsq_loads.append(op)
                    if len(lsq_loads) > lsq.peak_lq_occupancy:
                        lsq.peak_lq_occupancy = len(lsq_loads)
                elif uop.is_store:
                    lsq_stores.append(op)
                    if len(lsq_stores) > lsq.peak_sq_occupancy:
                        lsq.peak_sq_occupancy = len(lsq_stores)
            if multi_bank:
                if uop.dst is not None:
                    op.dest_bank = prf.next_bank()
                    prf.allocate()
                else:
                    prf.advance_without_allocation()
            elif uop.dst is not None:
                # Single-bank PRF: the allocation pointer never moves and the
                # destination bank is always 0 (the record's reset default).
                prf_allocated[0] += 1
            op.dispatch_cycle = cycle

        if not group:
            self._previous_dispatch_group = []
            return
        self._last_dispatched_seq = group[-1].seq

        # Phase C: Early Execution planning (in parallel with rename).
        if config.eole.early.enabled:
            self.early_block.plan(group, self._previous_dispatch_group)

        # Phase D/E: Late-Execution classification, IQ insertion and port accounting.
        late_enabled = config.eole.late.enabled
        late_block = self.late_block
        iq = self.iq
        iq_entries = iq._entries
        iq_capacity = iq.capacity
        store_sets = self.store_sets
        nop_class = OpClass.NOP
        for op in group:
            uop = op.uop
            pred_used = op.pred_used
            if late_enabled and (pred_used or uop.is_conditional_branch):
                # Pre-filter: only predicted µ-ops and conditional branches can be
                # late-executable (classify returns False for everything else).
                late_block.classify(op)
            if pred_used or op.early_executed:
                # The result is written to the PRF at dispatch: dependents may
                # consume it from this cycle on (mirrors result_available_cycle).
                op.avail_cycle = cycle
                if uop.dst is not None and not prf.try_ee_write(op.dest_bank, cycle):
                    # Port pressure delays the write by a cycle; modelled as a slight
                    # dispatch-side stall statistic rather than a structural replay.
                    stats.ee_write_port_stalls += 1
            if op.early_executed or op.late_executed or uop.opclass is nop_class:
                # Bypasses the OoO engine entirely (or needs no execution at all).
                op.complete_cycle = op.dispatch_cycle
                op.executed = True
            else:
                if len(iq_entries) >= iq_capacity:
                    stats.iq_full_stalls += 1
                    self._rollback_undispatched(group, group.index(op))
                    group = group[: group.index(op)]
                    break
                op.in_issue_queue = True
                iq_entries.append(op)
                if len(iq_entries) > iq.peak_occupancy:
                    iq.peak_occupancy = len(iq_entries)
                for producer in op.producers:
                    if producer is not None:
                        producer.iq_waiters += 1
                stats.dispatched_to_iq += 1
                wake = cycle + config.dispatch_to_issue_latency
                if wake < self._iq_scan_from:
                    self._iq_scan_from = wake
            if uop.is_load:
                op.mem_dependence = store_sets.dependence_for_load(op)
            elif uop.is_store:
                store_sets.register_store(op)

        self._previous_dispatch_group = group

    def _structural_space_for_op(self, op: InflightOp) -> str | None:
        if not self.rob.has_space():
            return "rob"
        if op.uop.is_memory and not self.lsq.has_space(op):
            return "lsq"
        if op.uop.dst is not None and self.config.prf_banks > 1 and not self.prf.can_allocate():
            return "prf"
        return None

    def _count_dispatch_stall(self, reason: str) -> None:
        if reason == "rob":
            self.stats.rob_full_stalls += 1
        elif reason == "lsq":
            self.stats.lsq_full_stalls += 1
        elif reason == "prf":
            self.stats.prf_bank_stalls += 1
            self.prf.record_bank_full_stall()

    def _rollback_undispatched(self, group: list[InflightOp], first_undispatched: int) -> None:
        """Return µ-ops that could not get an IQ slot to the front-end, youngest first."""
        for op in reversed(group[first_undispatched:]):
            # Undo the structural allocations performed in phase A/B.
            squashed = self.rob.squash_from(op.seq)
            for undone in squashed:
                undone.squashed = False
            if op.uop.is_memory:
                self.lsq.remove(op)
            if op.uop.dst is not None:
                self.prf.release(op.dest_bank)
            op.producers = ()
            op.early_executed = False
            op.late_executed = False
            op.executed = False
            op.dispatch_cycle = UNKNOWN_CYCLE
            op.complete_cycle = UNKNOWN_CYCLE
            op.avail_cycle = UNKNOWN_CYCLE
            op.wait_until = 0
            self._frontend.appendleft(op)
        # Rebuild the rename map from the surviving ROB contents.
        self._rebuild_rename_map()

    def _rebuild_rename_map(self) -> None:
        self._rename_map = {}
        for op in self.rob:
            for dst in op.uop.dst_regs:
                self._rename_map[dst] = op

    # ================================================================== fetch
    def _next_dyninst(self) -> DynInst | None:
        if self._replay:
            return self._replay.popleft()
        if self._trace_exhausted:
            return None
        try:
            return next(self._trace)
        except StopIteration:
            self._trace_exhausted = True
            return None

    def _push_back_dyninst(self, dyn: DynInst) -> None:
        self._replay.appendleft(dyn)

    def _fetch(self) -> None:
        config = self.config
        # Recycle retired records whose barrier has drained — fetch is the only
        # acquisition site, so promoting here guarantees no reader between a
        # record's release and its reuse.  (The pool's deferred queue is consulted
        # directly to keep the common nothing-parked cycle call-free.)
        pool = self.pool
        if pool._deferred:
            head = self.rob.head()
            pool.promote(head.seq if head is not None else None)
        if self._fetch_blocked_on is not None:
            return
        cycle = self.cycle
        if cycle < self._fetch_resume_cycle:
            return
        frontend = self._frontend
        if len(frontend) >= config.frontend_capacity:
            return
        fetch_width = config.fetch_width
        max_taken = config.max_taken_branches_per_cycle
        l1i_latency = config.memory.l1i_latency
        fetch_to_dispatch = config.fetch_to_dispatch_latency
        hierarchy_fetch = self.hierarchy.fetch
        bpu_predict = self.bpu.predict
        history = self.history
        predictor = self.predictor
        stats = self.stats
        replay = self._replay
        pool_free = pool._free
        pool_arena = pool._arena
        # L1I hit fast path (the reference path is hierarchy.fetch): sequential
        # fetch hits the MRU line of one set almost every µ-op.
        l1i = self.hierarchy.l1i
        l1i_sets = l1i._sets
        l1i_num_sets = l1i.num_sets
        l1i_line_size = l1i.line_size
        l1i_stats = l1i.stats
        fetched = 0
        taken_branches = 0
        while fetched < fetch_width:
            # Inlined _next_dyninst (kept below as the reference implementation).
            if replay:
                dyn = replay.popleft()
            elif self._trace_exhausted:
                break
            else:
                try:
                    dyn = next(self._trace)
                except StopIteration:
                    self._trace_exhausted = True
                    break
            uop = dyn.uop
            is_branch = uop.is_branch
            if is_branch and dyn.taken and taken_branches >= max_taken:
                replay.appendleft(dyn)
                break
            line = (dyn.pc * 4) // l1i_line_size
            ways = l1i_sets[line % l1i_num_sets]
            if ways and ways[0] == line:
                # MRU hit: same accounting as Cache.access, no latency beyond L1I.
                l1i_stats.accesses += 1
                l1i_stats.hits += 1
            else:
                icache_latency = hierarchy_fetch(dyn.pc, cycle)
                if icache_latency > l1i_latency:
                    # Instruction cache miss: fetch stalls until the line returns.
                    replay.appendleft(dyn)
                    self._fetch_resume_cycle = cycle + icache_latency
                    break

            # Inlined pool.acquire (kept as the reference implementation).
            if pool_free:
                op = pool_arena[pool_free.pop()]
                op._init(dyn)
            else:
                op = pool.acquire(dyn)
            op.fetch_cycle = cycle
            op.dispatch_ready_cycle = cycle + fetch_to_dispatch
            # Inlined history.snapshot() memoisation (one attribute read on the
            # common no-new-branch path).
            snapshot = history._snapshot
            op.history_snapshot = snapshot if snapshot is not None else history.snapshot()

            if predictor is not None and uop.vp_eligible:
                prediction = predictor.lookup(dyn.pc, history)
                op.prediction = prediction
                op.pred_used = prediction is not None and prediction.confident

            stop_fetching = False
            if is_branch:
                if dyn.taken:
                    taken_branches += 1
                outcome = bpu_predict(dyn)
                op.branch_outcome = outcome
                if outcome.direction_mispredicted or outcome.target_mispredicted:
                    self._fetch_blocked_on = op
                    stop_fetching = True
                elif outcome.resolved_at_decode:
                    stats.decode_redirects += 1
                    self._fetch_resume_cycle = cycle + config.decode_redirect_penalty
                    stop_fetching = True

            frontend.append(op)
            fetched += 1
            if stop_fetching:
                break
        if fetched:
            stats.fetched_uops += fetched

    # ================================================================== squash
    def _squash_from(self, seq: int) -> None:
        """Squash every µ-op with sequence number >= ``seq`` and set up re-fetch."""
        self.stats.pipeline_squashes += 1
        squashed_rob = self.rob.squash_from(seq)
        squashed_frontend: list[InflightOp] = []
        while self._frontend and self._frontend[-1].seq >= seq:
            op = self._frontend.pop()
            op.squashed = True
            squashed_frontend.append(op)
        squashed_frontend.reverse()
        squashed = squashed_rob + squashed_frontend
        if not squashed:
            return
        self.stats.squashed_uops += len(squashed)

        # Undo structural allocations of the squashed µ-ops.
        for op in squashed_rob:
            if op.uop.dst is not None and op.dispatch_cycle != UNKNOWN_CYCLE:
                self.prf.release(op.dest_bank)
        self.iq.remove_squashed()
        self.lsq.remove_squashed()
        self.store_sets.flush_lfst()
        self._rebuild_rename_map()
        self._previous_dispatch_group = []
        # Squashing flips dependence flags: surviving loads may now be ready.
        if self.cycle < self._iq_scan_from:
            self._iq_scan_from = self.cycle

        # Re-feed the squashed µ-ops to fetch, oldest first.
        for op in reversed(squashed):
            self._replay.appendleft(op.dyn)

        # Recover speculative predictor and history state.
        if self.predictor is not None:
            self.predictor.recover()
        self.history.restore(squashed[0].history_snapshot)

        # Fetch restarts after the squash (full front-end refill is paid naturally).
        if self._fetch_blocked_on is not None and self._fetch_blocked_on.squashed:
            self._fetch_blocked_on = None
        self._fetch_resume_cycle = max(self._fetch_resume_cycle, self.cycle + 1)

        # Squashed records are unreachable now (their consumers, being younger, died
        # with them; every structure above dropped its references) — recycle them,
        # except those still on the completion wheel, whose stale entries release
        # them when they pop.
        pool = self.pool
        for op in squashed:
            if not op.in_completion_wheel:
                pool.release(op)

    # ================================================================== run end / results
    def _check_run_end(self) -> None:
        """Reference implementation of the run-end test inlined at the end of
        :meth:`_step` (kept in sync with it)."""
        if self._finished:
            return
        if (
            self._trace_exhausted
            and not self._replay
            and not self._frontend
            and self.rob.is_empty
        ):
            self._finished = True

    def _build_result(self) -> SimulationResult:
        full = self.stats.copy()
        baseline = self._warmup_snapshot if self._warmup_snapshot is not None else SimStats()
        window = full.delta(baseline)
        coverage = accuracy = 0.0
        if self.predictor is not None:
            coverage = self.predictor.stats.coverage
            accuracy = self.predictor.stats.accuracy
        return SimulationResult(
            config_name=self.config.name,
            workload_name=self.workload_name,
            stats=window,
            full_stats=full,
            warmup_uops=self.warmup_uops,
            predictor_coverage=coverage,
            predictor_accuracy=accuracy,
            tage_misprediction_rate=self.bpu.tage.misprediction_rate,
            tage_high_confidence_misprediction_rate=(
                self.bpu.tage.high_confidence_misprediction_rate
            ),
            l1d_miss_rate=self.hierarchy.l1d.stats.miss_rate,
            l2_miss_rate=self.hierarchy.l2.stats.miss_rate,
            extra={
                "iq_peak_occupancy": self.iq.peak_occupancy,
                "rob_peak_occupancy": self.rob.peak_occupancy,
                "btb_hit_rate": self.bpu.btb.hit_rate,
            },
        )


def simulate(
    config: PipelineConfig,
    program: Program,
    max_uops: int = 20_000,
    warmup_uops: int = 0,
    arch_state: ArchState | None = None,
    workload_name: str | None = None,
    trace: "CapturedTrace | Iterable[DynInst] | None" = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    simulator = Simulator(
        config,
        program,
        max_uops=max_uops,
        warmup_uops=warmup_uops,
        arch_state=arch_state,
        workload_name=workload_name,
        trace=trace,
    )
    return simulator.run()
