"""The front-end branch prediction unit: TAGE + BTB + RAS + global history.

The timing pipeline calls :meth:`BranchPredictionUnit.predict` once per fetched
control-flow µ-op.  Because the simulator is trace-driven (correct path only), the unit
immediately knows the actual outcome and returns a :class:`BranchOutcome` describing
*how* the branch would have been handled:

* correctly predicted — no penalty;
* direction/target misprediction — resolved when the branch executes (OoO engine) or,
  for very-high-confidence conditional branches under EOLE, at the Late-Execution stage;
* BTB miss on a direct branch — resolved at decode (short front-end redirect).

The global history is updated with the actual direction of conditional branches, which
models a machine with perfect history repair on mispredictions (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.btb import BranchTargetBuffer, ReturnAddressStack
from repro.bpu.history import GlobalHistory
from repro.bpu.tage import TAGEBranchPredictor, TAGEPrediction
from repro.isa.opcode import OpClass
from repro.isa.trace import DynInst


@dataclass(slots=True)
class BranchOutcome:
    """Prediction record for one dynamic control-flow µ-op."""

    predicted_taken: bool
    predicted_target: int | None
    actual_taken: bool
    actual_target: int
    high_confidence: bool
    direction_mispredicted: bool
    target_mispredicted: bool
    resolved_at_decode: bool
    tage: TAGEPrediction | None = None

    @property
    def mispredicted(self) -> bool:
        """True if the branch requires a fetch redirect at resolution time."""
        return self.direction_mispredicted or self.target_mispredicted


class BranchPredictionUnit:
    """TAGE + BTB + RAS, sharing one global history register."""

    def __init__(
        self,
        tage: TAGEBranchPredictor | None = None,
        btb: BranchTargetBuffer | None = None,
        ras: ReturnAddressStack | None = None,
        history: GlobalHistory | None = None,
    ) -> None:
        self.tage = tage if tage is not None else TAGEBranchPredictor()
        self.btb = btb if btb is not None else BranchTargetBuffer()
        self.ras = ras if ras is not None else ReturnAddressStack()
        self.history = history if history is not None else GlobalHistory()
        self.conditional_branches = 0
        self.unconditional_branches = 0

    # ------------------------------------------------------------------ prediction
    def predict(self, inst: DynInst) -> BranchOutcome:
        """Predict the control-flow µ-op ``inst`` and update front-end state."""
        opclass = inst.uop.opclass
        actual_taken = inst.taken
        actual_target = inst.next_pc

        if opclass is OpClass.BR_COND:
            return self._predict_conditional(inst, actual_taken, actual_target)
        if opclass in (OpClass.BR_DIRECT, OpClass.CALL):
            return self._predict_direct(inst, actual_target, is_call=opclass is OpClass.CALL)
        if opclass is OpClass.RET:
            return self._predict_return(actual_target)
        return self._predict_indirect(inst, actual_target)

    def _predict_conditional(
        self, inst: DynInst, actual_taken: bool, actual_target: int
    ) -> BranchOutcome:
        self.conditional_branches += 1
        tage_prediction = self.tage.predict(inst.pc, self.history)
        predicted_taken = tage_prediction.taken
        predicted_target: int | None = None
        resolved_at_decode = False
        if predicted_taken:
            predicted_target = self.btb.lookup(inst.pc)
            if predicted_target is None and actual_taken:
                # Direct branch: the target becomes known at decode.
                resolved_at_decode = True
        direction_mispredicted = predicted_taken != actual_taken
        target_mispredicted = (
            not direction_mispredicted
            and actual_taken
            and predicted_target is not None
            and predicted_target != actual_target
        )
        if actual_taken:
            self.btb.update(inst.pc, actual_target)
        self.history.push(actual_taken)
        return BranchOutcome(
            predicted_taken=predicted_taken,
            predicted_target=predicted_target,
            actual_taken=actual_taken,
            actual_target=actual_target,
            high_confidence=tage_prediction.high_confidence,
            direction_mispredicted=direction_mispredicted,
            target_mispredicted=target_mispredicted,
            resolved_at_decode=resolved_at_decode,
            tage=tage_prediction,
        )

    def _predict_direct(
        self, inst: DynInst, actual_target: int, is_call: bool
    ) -> BranchOutcome:
        self.unconditional_branches += 1
        predicted_target = self.btb.lookup(inst.pc)
        resolved_at_decode = predicted_target is None or predicted_target != actual_target
        self.btb.update(inst.pc, actual_target)
        if is_call:
            self.ras.push(inst.pc + 1)
        return BranchOutcome(
            predicted_taken=True,
            predicted_target=predicted_target,
            actual_taken=True,
            actual_target=actual_target,
            high_confidence=False,
            direction_mispredicted=False,
            target_mispredicted=False,
            resolved_at_decode=resolved_at_decode,
        )

    def _predict_return(self, actual_target: int) -> BranchOutcome:
        self.unconditional_branches += 1
        predicted_target = self.ras.pop()
        target_mispredicted = predicted_target != actual_target
        return BranchOutcome(
            predicted_taken=True,
            predicted_target=predicted_target,
            actual_taken=True,
            actual_target=actual_target,
            high_confidence=False,
            direction_mispredicted=False,
            target_mispredicted=target_mispredicted,
            resolved_at_decode=False,
        )

    def _predict_indirect(self, inst: DynInst, actual_target: int) -> BranchOutcome:
        self.unconditional_branches += 1
        predicted_target = self.btb.lookup(inst.pc)
        target_mispredicted = predicted_target != actual_target
        self.btb.update(inst.pc, actual_target)
        return BranchOutcome(
            predicted_taken=True,
            predicted_target=predicted_target,
            actual_taken=True,
            actual_target=actual_target,
            high_confidence=False,
            direction_mispredicted=False,
            target_mispredicted=target_mispredicted,
            resolved_at_decode=False,
        )

    # ------------------------------------------------------------------ training
    def train(self, inst: DynInst, outcome: BranchOutcome) -> None:
        """Commit-time training of the conditional-branch predictor."""
        if outcome.tage is not None:
            self.tage.update(inst.pc, outcome.actual_taken, outcome.tage)

    def train_commit_group(self, group: list[tuple[int, "BranchOutcome"]]) -> None:
        """Train one commit group of ``(pc, outcome)`` conditional branches.

        One call per commit group amortises the per-branch wrapper overhead; the
        per-item TAGE update order is the commit order, exactly as with
        :meth:`train` per µ-op.
        """
        update = self.tage.update
        for pc, outcome in group:
            if outcome.tage is not None:
                update(pc, outcome.actual_taken, outcome.tage)

    def train_commit_group_columns(
        self, pcs: list[int], outcomes: "list[BranchOutcome]"
    ) -> None:
        """Columnar :meth:`train_commit_group`: parallel pc/outcome sequences
        (what the structure-of-arrays commit loop accumulates); the per-item
        TAGE update order is the commit order, exactly as with the tuple form.
        """
        update = self.tage.update
        for pc, outcome in zip(pcs, outcomes):
            if outcome.tage is not None:
                update(pc, outcome.actual_taken, outcome.tage)
