"""Global branch history register with folded-history helpers.

Both the TAGE branch predictor and the VTAGE value predictor index their tagged
components with a hash of the PC and a geometrically increasing slice of the global
conditional-branch history (Seznec & Michaud, JILP 2006; Perais & Seznec, HPCA 2014).
This module provides the shared history register abstraction, including the standard
"folding" of a long history slice down to an index- or tag-sized bit field.
"""

from __future__ import annotations


class GlobalHistory:
    """A fixed-capacity global branch-history register.

    The youngest outcome occupies bit 0.  The register is deliberately storage-bounded
    (``capacity`` bits) like a hardware history register.
    """

    __slots__ = ("capacity", "_bits", "_mask")

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("history capacity must be positive")
        self.capacity = capacity
        self._bits = 0
        self._mask = (1 << capacity) - 1

    # ------------------------------------------------------------------ update
    def push(self, taken: bool) -> None:
        """Insert the outcome of the most recent conditional branch."""
        self._bits = ((self._bits << 1) | (1 if taken else 0)) & self._mask

    def snapshot(self) -> int:
        """Return the raw history bits (useful for checkpoint/restore on squash)."""
        return self._bits

    def restore(self, bits: int) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        self._bits = bits & self._mask

    def clear(self) -> None:
        """Reset the history register to all-not-taken."""
        self._bits = 0

    # ------------------------------------------------------------------ access
    @property
    def bits(self) -> int:
        """Raw history bits, youngest outcome in bit 0."""
        return self._bits

    def slice(self, length: int) -> int:
        """The youngest ``length`` bits of history."""
        if length <= 0:
            return 0
        if length >= self.capacity:
            return self._bits
        return self._bits & ((1 << length) - 1)

    def fold(self, length: int, width: int) -> int:
        """Fold the youngest ``length`` history bits down to ``width`` bits by XOR."""
        return fold_bits(self.slice(length), length, width)


def fold_bits(value: int, length: int, width: int) -> int:
    """XOR-fold ``length`` bits of ``value`` into a ``width``-bit quantity."""
    if width <= 0 or length <= 0:
        return 0
    mask = (1 << width) - 1
    folded = 0
    remaining = value & ((1 << length) - 1)
    while remaining:
        folded ^= remaining & mask
        remaining >>= width
    return folded & mask


class FoldedHistoryCache:
    """Memoised folded-history values for a fixed set of (length, width) pairs.

    The tagged predictors (TAGE, VTAGE) fold geometrically increasing history
    slices on every lookup, but the history itself only changes when a conditional
    branch retires direction into it (or a squash restores it).  This cache
    recomputes the folds only when the observed history *bits* change — so a squash
    restoring the pre-squash history, the common recovery case, keeps them — and is
    shared by both predictors so the invalidation protocol cannot diverge.
    """

    __slots__ = ("lengths", "widths", "_source", "_bits", "_folds")

    def __init__(self, lengths, widths) -> None:
        self.lengths = tuple(lengths)
        self.widths = tuple(widths)
        if len(self.lengths) != len(self.widths):
            raise ValueError("lengths and widths must pair up")
        self._source: GlobalHistory | None = None
        self._bits = -1
        self._folds: tuple[int, ...] = ()

    def folds(self, history: GlobalHistory) -> tuple[int, ...]:
        """``fold(length, width)`` per pair, identical to computing them directly."""
        bits = history.snapshot()
        if history is not self._source or bits != self._bits:
            fold = history.fold
            self._folds = tuple(
                fold(length, width) for length, width in zip(self.lengths, self.widths)
            )
            self._source = history
            self._bits = bits
        return self._folds
