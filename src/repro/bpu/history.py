"""Global branch history register with folded-history helpers.

Both the TAGE branch predictor and the VTAGE value predictor index their tagged
components with a hash of the PC and a geometrically increasing slice of the global
conditional-branch history (Seznec & Michaud, JILP 2006; Perais & Seznec, HPCA 2014).
This module provides the shared history register abstraction, including the standard
"folding" of a long history slice down to an index- or tag-sized bit field.

Folding is maintained *incrementally*, the way hardware does it: each (length, width)
pair is a circular-shifted register updated in O(1) on every :meth:`GlobalHistory.push`
(Seznec & Michaud's CSR scheme), instead of re-XOR-folding up to ``capacity`` history
bits per prediction.  :func:`fold_bits` remains the reference implementation the
incremental registers are tested against, and squash recovery goes through
:meth:`GlobalHistory.snapshot` / :meth:`GlobalHistory.restore`, which carry the folded
state alongside the raw bits so recovery never re-folds either.
"""

from __future__ import annotations


def fold_bits(value: int, length: int, width: int) -> int:
    """XOR-fold ``length`` bits of ``value`` into a ``width``-bit quantity.

    Reference implementation: the incremental registers of :class:`FoldedRegisterFile`
    must always equal ``fold_bits(history.slice(length), length, width)``.
    """
    if width <= 0 or length <= 0:
        return 0
    mask = (1 << width) - 1
    folded = 0
    remaining = value & ((1 << length) - 1)
    while remaining:
        folded ^= remaining & mask
        remaining >>= width
    return folded & mask


class FoldedRegisterFile:
    """Circular-shifted folded-history registers for one set of (length, width) pairs.

    One register per pair, each holding ``fold_bits(history.slice(length), length,
    width)`` at all times.  On :meth:`push`, every register is updated in O(1): the
    register rotates left by one within its width, the incoming outcome lands in bit
    0, and the outgoing history bit (bit ``length - 1`` of the *pre-push* raw history)
    is cancelled at bit ``length % width`` — exactly where the rotation moved its
    contribution.  Restoring a snapshot reinstates the register values directly; no
    path ever re-folds the raw history once the file is attached.
    """

    __slots__ = (
        "history",
        "lengths",
        "widths",
        "folds",
        "_params",
        "_active",
        "_activations",
        "_tuple_cache",
    )

    def __init__(self, history: "GlobalHistory", lengths, widths, lazy: bool = False) -> None:
        self.history = history
        self.lengths = tuple(lengths)
        self.widths = tuple(widths)
        if len(self.lengths) != len(self.widths):
            raise ValueError("lengths and widths must pair up")
        # Per-register constants: (out_shift, out_point, top_shift, mask).  Lengths are
        # clamped to the history capacity — the register itself holds no more bits, so
        # a longer slice folds identically (the reference fold_bits agrees: the extra
        # "bits" are all zero).
        self._params = []
        for length, width in zip(self.lengths, self.widths):
            length = min(length, history.capacity)
            if length <= 0 or width <= 0:
                self._params.append(None)
            else:
                self._params.append(
                    (length - 1, length % width, width - 1, (1 << width) - 1)
                )
        # A lazy file starts with every register dormant: pushes skip it (``_push``
        # iterates ``_active``) and its fold reads as ``None`` until :meth:`activate`
        # back-fills it from the raw history.  Consumers of possibly-dormant folds
        # must fall back to ``fold_bits`` on ``None`` (TAGE/VTAGE carry the raw
        # lookup-time bits for exactly that).  An eager file is fully active forever.
        self._active: list = [None] * len(self._params) if lazy else list(self._params)
        self._activations = 0
        self.folds: list = []
        self._refold(history._bits)

    def _refold(self, bits: int) -> None:
        """Recompute every active register from raw ``bits`` (attach time / legacy restore)."""
        capacity = self.history.capacity
        self.folds = [
            fold_bits(bits, min(length, capacity), width) if active is not None else None
            for active, length, width in zip(self._active, self.lengths, self.widths)
        ]
        self._tuple_cache: tuple | None = None

    def activate(self, index: int) -> None:
        """Wake a dormant register, back-filling its fold from the raw history.

        Idempotent and monotonic: once active, a register is rotated by every
        subsequent push and always equals the reference fold.  Called by TAGE/VTAGE
        the first time a tagged component receives an entry (``_component_sizes``
        0→1), so histories only pay per-push work for components that exist.
        """
        if self._active[index] is not None:
            return
        params = self._params[index]
        if params is None:
            return
        self._active[index] = params
        history = self.history
        self.folds[index] = fold_bits(
            history._bits, min(self.lengths[index], history.capacity), self.widths[index]
        )
        self._tuple_cache = None
        self._activations += 1

    def activate_all(self) -> None:
        """Promote the file to fully-eager (every register active)."""
        for index in range(len(self._params)):
            self.activate(index)

    def _restore_patch(self, saved: tuple, bits: int) -> None:
        """Restore from a snapshot older than the latest activation.

        Registers activated after the snapshot have ``None`` holes in ``saved`` but
        are active now — an active register must always hold a valid fold, so the
        holes are re-folded from the restored raw ``bits``.
        """
        folds = list(saved)
        capacity = self.history.capacity
        for index, active in enumerate(self._active):
            if active is not None and folds[index] is None:
                folds[index] = fold_bits(
                    bits, min(self.lengths[index], capacity), self.widths[index]
                )
        self.folds = folds
        self._tuple_cache = None

    def folds_tuple(self) -> tuple[int, ...]:
        """Immutable snapshot of the register values, memoised between pushes.

        Value-predictor lookups snapshot the folds once per µ-op but the registers
        only change per conditional branch, so the tuple is shared by every lookup
        in between.
        """
        cached = self._tuple_cache
        if cached is None:
            cached = tuple(self.folds)
            self._tuple_cache = cached
        return cached

    def _push(self, old_bits: int, bit: int) -> None:
        """O(1) update of every register for one pushed outcome ``bit``."""
        self._tuple_cache = None
        folds = self.folds
        index = 0
        for params in self._active:
            if params is not None:
                out_shift, out_point, top_shift, mask = params
                fold = folds[index]
                fold = ((fold << 1) | (fold >> top_shift)) & mask
                fold ^= bit
                fold ^= ((old_bits >> out_shift) & 1) << out_point
                folds[index] = fold & mask
            index += 1


class HistorySnapshot(int):
    """A :meth:`GlobalHistory.snapshot` value: the raw history bits, as an ``int``.

    Subclassing ``int`` keeps the long-standing contract (snapshots compare and hash
    like the raw bits) while piggybacking the incremental folded-register state, so
    :meth:`GlobalHistory.restore` is O(registers) instead of re-folding the full
    history.  A plain ``int`` (e.g. the ``0`` default of a fresh
    :class:`~repro.ooo.inflight.InflightOp`) is still accepted by ``restore`` — the
    folded registers are then recomputed from the raw bits.

    (``int`` subclasses cannot carry nonempty ``__slots__``, so ``folds`` lives in the
    instance dict; snapshots are memoised per push in :meth:`GlobalHistory.snapshot`,
    so at most one is created per history change.)
    """

    folds: tuple[tuple, ...]
    #: Per-file activation counters at snapshot time, so ``restore`` can detect lazy
    #: registers that woke up after the snapshot (their saved folds are ``None``
    #: holes that must be re-folded from the raw bits).
    acts: tuple[int, ...]


class GlobalHistory:
    """A fixed-capacity global branch-history register.

    The youngest outcome occupies bit 0.  The register is deliberately storage-bounded
    (``capacity`` bits) like a hardware history register.
    """

    __slots__ = ("capacity", "_bits", "_mask", "_registers", "_snapshot")

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("history capacity must be positive")
        self.capacity = capacity
        self._bits = 0
        self._mask = (1 << capacity) - 1
        #: Attached folded-register files, in attach order (append-only, so snapshot
        #: fold tuples stay index-aligned even when a file attaches mid-run).
        self._registers: list[FoldedRegisterFile] = []
        self._snapshot: HistorySnapshot | None = None

    # ------------------------------------------------------------------ update
    def push(self, taken: bool) -> None:
        """Insert the outcome of the most recent conditional branch."""
        bits = self._bits
        bit = 1 if taken else 0
        for registers in self._registers:
            registers._push(bits, bit)
        self._bits = ((bits << 1) | bit) & self._mask
        self._snapshot = None

    def snapshot(self) -> HistorySnapshot:
        """Checkpoint the history (raw bits + folded registers) for squash recovery.

        The returned value is an ``int`` equal to :attr:`bits`; it additionally
        carries the attached folded-register values so :meth:`restore` never has to
        re-fold.  Snapshots are memoised between pushes, so checkpointing every
        fetched µ-op costs one attribute read on the common no-new-branch path.
        """
        snapshot = self._snapshot
        if snapshot is None:
            snapshot = HistorySnapshot(self._bits)
            snapshot.folds = tuple(reg.folds_tuple() for reg in self._registers)
            snapshot.acts = tuple(reg._activations for reg in self._registers)
            self._snapshot = snapshot
        return snapshot

    def restore(self, snapshot: int) -> None:
        """Restore a checkpoint taken with :meth:`snapshot` (or raw history bits)."""
        self._bits = int(snapshot) & self._mask
        folds = getattr(snapshot, "folds", None)
        acts = getattr(snapshot, "acts", None)
        for index, registers in enumerate(self._registers):
            if folds is not None and index < len(folds):
                if (
                    acts is None
                    or index >= len(acts)
                    or acts[index] != registers._activations
                ):
                    # Lazy registers woke up after this snapshot was taken: patch
                    # the ``None`` holes from the restored raw bits.
                    registers._restore_patch(folds[index], self._bits)
                else:
                    registers.folds = list(folds[index])
                    registers._tuple_cache = folds[index]
            else:
                # Register file attached after the snapshot was taken (or a raw-bits
                # restore): fall back to re-folding from the restored history.
                registers._refold(self._bits)
        self._snapshot = snapshot if isinstance(snapshot, HistorySnapshot) and folds is not None and len(folds) == len(self._registers) else None

    def clear(self) -> None:
        """Reset the history register to all-not-taken."""
        self._bits = 0
        for registers in self._registers:
            registers._refold(0)
        self._snapshot = None

    # ------------------------------------------------------------------ folded registers
    def folded_registers(self, lengths, widths, lazy: bool = False) -> FoldedRegisterFile:
        """Attach (or reuse) an incremental folded-register file for given pairs.

        Register files are deduplicated by their (lengths, widths) signature, so two
        predictors with identical geometry share one set of registers.  With
        ``lazy=True`` the registers start dormant and are woken individually via
        :meth:`FoldedRegisterFile.activate`; an eager request for an existing lazy
        file promotes it (active registers are always valid, just never dormant).
        """
        key = (tuple(lengths), tuple(widths))
        for registers in self._registers:
            if (registers.lengths, registers.widths) == key:
                if not lazy:
                    registers.activate_all()
                return registers
        registers = FoldedRegisterFile(self, key[0], key[1], lazy=lazy)
        self._registers.append(registers)
        self._snapshot = None
        return registers

    # ------------------------------------------------------------------ access
    @property
    def bits(self) -> int:
        """Raw history bits, youngest outcome in bit 0."""
        return self._bits

    def slice(self, length: int) -> int:
        """The youngest ``length`` bits of history."""
        if length <= 0:
            return 0
        if length >= self.capacity:
            return self._bits
        return self._bits & ((1 << length) - 1)

    def fold(self, length: int, width: int) -> int:
        """Fold the youngest ``length`` history bits down to ``width`` bits by XOR."""
        return fold_bits(self.slice(length), length, width)
