"""Branch prediction unit: TAGE, BTB, return-address stack and global history."""

from repro.bpu.btb import BranchTargetBuffer, ReturnAddressStack
from repro.bpu.history import GlobalHistory, fold_bits
from repro.bpu.tage import TAGEBranchPredictor, TAGEPrediction
from repro.bpu.unit import BranchOutcome, BranchPredictionUnit

__all__ = [
    "BranchOutcome",
    "BranchPredictionUnit",
    "BranchTargetBuffer",
    "GlobalHistory",
    "ReturnAddressStack",
    "TAGEBranchPredictor",
    "TAGEPrediction",
    "fold_bits",
]
