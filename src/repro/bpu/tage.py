"""TAGE conditional branch predictor with storage-free confidence estimation.

The baseline machine of the paper (Table 1) uses a TAGE predictor with 1 bimodal + 12
tagged components.  EOLE additionally relies on Seznec's storage-free confidence
estimation (HPCA 2011): predictions whose providing counter is *saturated* are "very
high confidence" and exhibit misprediction rates well below 0.5%, which is what allows
their resolution to be delayed until the Late-Execution stage (Section 3.3).

This implementation is a faithful, parameterisable TAGE: bimodal base predictor, tagged
components indexed with geometrically increasing global-history lengths, useful
counters, TAGE-style allocation on mispredictions, and a use-alt-on-newly-allocated
policy.  Scaled-down table sizes are used by default to match the reduced footprint of
the synthetic workloads; the named pipeline configurations size it up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.history import FoldedRegisterFile, GlobalHistory, fold_bits
from repro.errors import ConfigurationError
from repro.vp.confidence import DeterministicRandom
from repro.vp.vtage import geometric_history_lengths

_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    value &= _MASK64
    value ^= value >> 33
    value = (value * 0xC2B2AE3D27D4EB4F) & _MASK64
    return value ^ (value >> 29)


@dataclass(slots=True)
class TAGEPrediction:
    """Outcome of a TAGE lookup, carried until branch resolution/commit for training.

    Non-provider component indices/tags are not materialised at lookup time: ``folds``
    snapshots the incremental folded-history registers (the live registers advance
    with every branch), and commit-time allocation re-derives from it exactly the
    indices/tags the lookup would have computed for the components it touches.
    """

    taken: bool
    high_confidence: bool
    provider: int  # -1 = bimodal, else tagged component rank
    provider_counter: int
    provider_index: int
    alt_taken: bool
    pc: int
    folds: tuple
    bimodal_index: int
    #: Raw history bits at lookup time.  The fold snapshot holds ``None`` for
    #: components whose lazily-activated register was still dormant; consumers
    #: re-fold those from ``bits`` (provably equal to what the register held).
    bits: int = 0


class _TageEntry:
    __slots__ = ("tag", "counter", "useful", "valid")

    def __init__(self) -> None:
        self.tag = 0
        self.counter = 4  # weakly taken (3-bit counter, 0..7)
        self.useful = 0
        self.valid = False


class TAGEBranchPredictor:
    """TAGE with per-prediction confidence classification."""

    #: counter value at or above which the prediction is "taken"
    _TAKEN_THRESHOLD = 4
    _COUNTER_MAX = 7
    _USEFUL_MAX = 3

    def __init__(
        self,
        bimodal_entries: int = 8192,
        tagged_entries: int = 1024,
        num_components: int = 12,
        tag_bits: int = 11,
        min_history: int = 4,
        max_history: int = 256,
        useful_reset_period: int = 1 << 18,
        seed: int = 0x7A9E,
    ) -> None:
        for entries in (bimodal_entries, tagged_entries):
            if entries <= 0 or entries & (entries - 1):
                raise ConfigurationError("TAGE table sizes must be powers of two")
        self.bimodal_entries = bimodal_entries
        self.tagged_entries = tagged_entries
        self.num_components = num_components
        self.tag_bits = tag_bits
        self.history_lengths = geometric_history_lengths(min_history, max_history, num_components)
        self.useful_reset_period = useful_reset_period
        self._bimodal_mask = bimodal_entries - 1
        self._tagged_mask = tagged_entries - 1
        self._index_width = self._tagged_mask.bit_length()
        self._tag_mask = (1 << tag_bits) - 1
        # Lookup memoisation, mirroring VTAGE: the PC hash mixes are static, and the
        # folded history lives in incrementally-maintained registers attached to the
        # GlobalHistory itself (updated in O(1) per pushed branch outcome, restored
        # from snapshots on squash) — one register per component index plus one per
        # component tag, concatenated into a single file.
        self._pc_mix_cache: dict[int, tuple[tuple[int, ...], tuple[int, ...], int]] = {}
        self._fold_widths = [self._index_width] * num_components + [tag_bits] * num_components
        self._fold_registers: FoldedRegisterFile | None = None
        self._bimodal = [2] * bimodal_entries  # 2-bit counters, 0..3, weakly not-taken=1
        # Entries are allocated lazily on first allocation: a ``None`` slot behaves
        # exactly like a never-allocated entry (``valid`` False, ``useful`` 0).  The
        # per-component entry counts let lookups skip entirely-empty components.
        self._components: list[list[_TageEntry | None]] = [
            [None] * tagged_entries for _ in range(num_components)
        ]
        self._component_sizes = [0] * num_components
        self._random = DeterministicRandom(seed)
        self._use_alt_on_na = 8  # 4-bit counter, >=8 means "use alt for new entries"
        self._branches_seen = 0
        # Statistics.
        self.lookups = 0
        self.mispredictions = 0
        self.high_confidence_lookups = 0
        self.high_confidence_mispredictions = 0

    # ------------------------------------------------------------------ indexing
    def _bimodal_index(self, pc: int) -> int:
        return _mix(pc) & self._bimodal_mask

    def _tagged_index(self, pc: int, history: GlobalHistory, rank: int) -> int:
        folded = history.fold(self.history_lengths[rank], self._tagged_mask.bit_length())
        return (_mix(pc + rank * 0x9E37) ^ folded) & self._tagged_mask

    def _tagged_tag(self, pc: int, history: GlobalHistory, rank: int) -> int:
        folded = history.fold(self.history_lengths[rank], self.tag_bits)
        return (_mix(pc * 3 + rank * 7 + 5) ^ folded) & ((1 << self.tag_bits) - 1)

    # ------------------------------------------------------------------ memoisation
    def _pc_mixes(self, pc: int) -> tuple[tuple[int, ...], tuple[int, ...], int]:
        """The PC-dependent halves of every index/tag hash, plus the bimodal index."""
        cached = self._pc_mix_cache.get(pc)
        if cached is None:
            index_mixes = tuple(
                _mix(pc + rank * 0x9E37) for rank in range(self.num_components)
            )
            tag_mixes = tuple(
                _mix(pc * 3 + rank * 7 + 5) for rank in range(self.num_components)
            )
            cached = (index_mixes, tag_mixes, _mix(pc) & self._bimodal_mask)
            self._pc_mix_cache[pc] = cached
        return cached

    def _folds(self, history: GlobalHistory) -> list[int]:
        """The incremental folded registers for ``history`` (attached on first use).

        Index folds occupy ``[0, num_components)``, tag folds occupy
        ``[num_components, 2 * num_components)``.
        """
        registers = self._fold_registers
        if registers is None or registers.history is not history:
            registers = history.folded_registers(
                self.history_lengths + self.history_lengths, self._fold_widths,
                lazy=True,
            )
            self._fold_registers = registers
        return registers.folds

    # ------------------------------------------------------------------ prediction
    def predict(self, pc: int, history: GlobalHistory) -> TAGEPrediction:
        """Predict the direction of the conditional branch at ``pc``."""
        self.lookups += 1
        index_mixes, tag_mixes, bimodal_index = self._pc_mixes(pc)
        folds = self._folds(history)
        num_components = self.num_components
        tagged_mask = self._tagged_mask
        tag_mask = self._tag_mask
        components = self._components
        sizes = self._component_sizes
        provider = -1
        provider_index = 0
        provider_entry: _TageEntry | None = None
        alt_entry: _TageEntry | None = None
        for rank in range(num_components):
            # Empty components cannot hit; the hash is skipped entirely (allocation
            # re-derives it from the prediction's fold snapshot when needed).  Tags
            # are only hashed for slots that actually hold an entry.
            if not sizes[rank]:
                continue
            index = (index_mixes[rank] ^ folds[rank]) & tagged_mask
            entry = components[rank][index]
            if entry is not None and entry.valid:
                tag = (tag_mixes[rank] ^ folds[num_components + rank]) & tag_mask
                if entry.tag == tag:
                    alt_entry = provider_entry
                    provider = rank
                    provider_index = index
                    provider_entry = entry

        bimodal_taken = self._bimodal[bimodal_index] >= 2

        if alt_entry is not None:
            alt_taken = alt_entry.counter >= self._TAKEN_THRESHOLD
        else:
            alt_taken = bimodal_taken

        if provider_entry is not None:
            provider_counter = provider_entry.counter
            taken = provider_counter >= self._TAKEN_THRESHOLD
            newly_allocated = provider_entry.useful == 0 and provider_counter in (3, 4)
            if newly_allocated and self._use_alt_on_na >= 8:
                taken = alt_taken
            saturated = provider_counter in (0, self._COUNTER_MAX)
            high_confidence = saturated and not newly_allocated
        else:
            provider_counter = self._bimodal[bimodal_index]
            taken = bimodal_taken
            high_confidence = provider_counter in (0, 3)

        prediction = TAGEPrediction(
            taken=taken,
            high_confidence=high_confidence,
            provider=provider,
            provider_counter=provider_counter,
            provider_index=provider_index,
            alt_taken=alt_taken,
            pc=pc,
            folds=self._fold_registers.folds_tuple(),
            bimodal_index=bimodal_index,
            bits=history._bits,
        )
        if high_confidence:
            self.high_confidence_lookups += 1
        return prediction

    # ------------------------------------------------------------------ update
    def _update_counter(self, value: int, taken: bool, maximum: int) -> int:
        if taken:
            return min(maximum, value + 1)
        return max(0, value - 1)

    def update(self, pc: int, taken: bool, prediction: TAGEPrediction) -> None:
        """Train the predictor with the resolved outcome of a conditional branch."""
        self._branches_seen += 1
        mispredicted = prediction.taken != taken
        if mispredicted:
            self.mispredictions += 1
            if prediction.high_confidence:
                self.high_confidence_mispredictions += 1

        if prediction.provider >= 0:
            rank = prediction.provider
            entry = self._components[rank][prediction.provider_index]
            provider_pred = prediction.provider_counter >= self._TAKEN_THRESHOLD
            # use-alt-on-newly-allocated bookkeeping.
            newly_allocated = entry.useful == 0 and prediction.provider_counter in (3, 4)
            if newly_allocated and provider_pred != prediction.alt_taken:
                if provider_pred == taken:
                    self._use_alt_on_na = max(0, self._use_alt_on_na - 1)
                else:
                    self._use_alt_on_na = min(15, self._use_alt_on_na + 1)
            entry.counter = self._update_counter(entry.counter, taken, self._COUNTER_MAX)
            if provider_pred != prediction.alt_taken:
                if provider_pred == taken:
                    entry.useful = min(self._USEFUL_MAX, entry.useful + 1)
                else:
                    entry.useful = max(0, entry.useful - 1)
        else:
            self._bimodal[prediction.bimodal_index] = self._update_counter(
                self._bimodal[prediction.bimodal_index], taken, 3
            )

        if mispredicted and prediction.provider < self.num_components - 1:
            self._allocate(taken, prediction)

        if self._branches_seen % self.useful_reset_period == 0:
            self._age_useful_bits()

    def _prediction_index(self, prediction: TAGEPrediction, rank: int) -> int:
        """Re-derive the component index the lookup for ``prediction`` used."""
        if rank == prediction.provider:
            return prediction.provider_index
        index_mixes, _, _ = self._pc_mixes(prediction.pc)
        fold = prediction.folds[rank]
        if fold is None:  # register was dormant at lookup — re-fold from raw bits
            fold = fold_bits(prediction.bits, self.history_lengths[rank], self._index_width)
        return (index_mixes[rank] ^ fold) & self._tagged_mask

    def _prediction_tag(self, prediction: TAGEPrediction, rank: int) -> int:
        """Re-derive the component tag the lookup for ``prediction`` used."""
        _, tag_mixes, _ = self._pc_mixes(prediction.pc)
        fold = prediction.folds[self.num_components + rank]
        if fold is None:  # register was dormant at lookup — re-fold from raw bits
            fold = fold_bits(prediction.bits, self.history_lengths[rank], self.tag_bits)
        return (tag_mixes[rank] ^ fold) & self._tag_mask

    def _allocate(self, taken: bool, prediction: TAGEPrediction) -> None:
        start = prediction.provider + 1
        components = self._components
        index_mixes, _, _ = self._pc_mixes(prediction.pc)
        folds = prediction.folds
        tagged_mask = self._tagged_mask
        bits = prediction.bits
        lengths = self.history_lengths
        index_width = self._index_width
        # One fused probe pass over the longer-history components only, re-deriving
        # each index from the prediction's fold snapshot (identical to the lookup's).
        probed: list[tuple[int, int, _TageEntry | None]] = []
        candidates: list[tuple[int, int, _TageEntry | None]] = []
        for rank in range(start, self.num_components):
            fold = folds[rank]
            if fold is None:  # dormant register at lookup time
                fold = fold_bits(bits, lengths[rank], index_width)
            index = (index_mixes[rank] ^ fold) & tagged_mask
            entry = components[rank][index]
            probed.append((rank, index, entry))
            if entry is None or entry.useful == 0:
                candidates.append((rank, index, entry))
        if not candidates:
            for _, _, entry in probed:
                if entry is not None:
                    entry.useful = max(0, entry.useful - 1)
            return
        choice, choice_index, choice_entry = candidates[0]
        if len(candidates) > 1 and self._random.chance_half():
            choice, choice_index, choice_entry = candidates[1]
        if choice_entry is None:
            choice_entry = _TageEntry()
            components[choice][choice_index] = choice_entry
            self._component_sizes[choice] += 1
            if self._component_sizes[choice] == 1:
                # First entry in this component: wake its lazily-dormant folded
                # registers so subsequent lookups read live folds.
                registers = self._fold_registers
                if registers is not None:
                    registers.activate(choice)
                    registers.activate(self.num_components + choice)
        choice_entry.valid = True
        choice_entry.tag = self._prediction_tag(prediction, choice)
        choice_entry.counter = 4 if taken else 3
        choice_entry.useful = 0

    def _age_useful_bits(self) -> None:
        for component in self._components:
            for entry in component:
                if entry is not None:
                    entry.useful >>= 1

    # ------------------------------------------------------------------ statistics
    @property
    def misprediction_rate(self) -> float:
        """Overall misprediction rate over all lookups."""
        return self.mispredictions / self.lookups if self.lookups else 0.0

    @property
    def high_confidence_misprediction_rate(self) -> float:
        """Misprediction rate restricted to very-high-confidence predictions."""
        if not self.high_confidence_lookups:
            return 0.0
        return self.high_confidence_mispredictions / self.high_confidence_lookups

    def storage_bits(self) -> int:
        """Approximate storage budget of the tables, in bits."""
        bimodal = self.bimodal_entries * 2
        tagged = self.num_components * self.tagged_entries * (3 + 2 + self.tag_bits)
        return bimodal + tagged
