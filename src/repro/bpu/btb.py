"""Branch Target Buffer (BTB) — set-associative target cache.

The baseline front-end (Table 1) uses a 2-way, 4K-entry BTB.  In the trace-driven model
the BTB matters in two ways:

* a taken branch whose target is absent from the BTB incurs a front-end redirect
  (the target becomes known at decode for direct branches, at execute for indirect
  ones);
* indirect branches are predicted with the last target stored in the BTB, so a changing
  indirect target is a misprediction resolved at execute time.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class BranchTargetBuffer:
    """A set-associative branch target buffer with LRU replacement."""

    def __init__(self, entries: int = 4096, associativity: int = 2) -> None:
        if entries <= 0 or entries % associativity:
            raise ConfigurationError("BTB entries must be a positive multiple of associativity")
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        # Each set is an ordered list of (pc, target); index 0 is the MRU way.
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_index(self, pc: int) -> int:
        return pc % self.num_sets

    def lookup(self, pc: int) -> int | None:
        """Predicted target of the branch at ``pc`` (``None`` on a BTB miss)."""
        ways = self._sets[self._set_index(pc)]
        for position, (tag, target) in enumerate(ways):
            if tag == pc:
                self.hits += 1
                if position:
                    ways.insert(0, ways.pop(position))
                return target
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target of the branch at ``pc``."""
        ways = self._sets[self._set_index(pc)]
        for position, (tag, _) in enumerate(ways):
            if tag == pc:
                ways.pop(position)
                break
        ways.insert(0, (pc, target))
        if len(ways) > self.associativity:
            ways.pop()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ReturnAddressStack:
    """Circular return-address stack (Table 1: 32 entries)."""

    def __init__(self, entries: int = 32) -> None:
        if entries <= 0:
            raise ConfigurationError("RAS must have at least one entry")
        self.entries = entries
        self._stack: list[int] = []
        self.overflows = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        """Record the return address of a call."""
        self._stack.append(return_pc)
        if len(self._stack) > self.entries:
            # Oldest entry is lost, like a hardware circular stack wrapping around.
            self._stack.pop(0)
            self.overflows += 1

    def pop(self) -> int | None:
        """Predicted return target (``None`` if the stack has underflowed)."""
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    @property
    def depth(self) -> int:
        """Current number of valid entries."""
        return len(self._stack)
