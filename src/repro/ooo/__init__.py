"""Out-of-order engine substrate: ROB, IQ, LSQ, Store Sets, FU pool and banked PRF."""

from repro.ooo.functional_units import FunctionalUnitConfig, FunctionalUnitPool
from repro.ooo.inflight import InflightOp, UNKNOWN_CYCLE
from repro.ooo.issue_queue import IssueQueue
from repro.ooo.lsq import LoadStoreQueue
from repro.ooo.registers import BankedRegisterFile, PRFPortBudget, register_file_area_cost
from repro.ooo.rob import ReorderBuffer
from repro.ooo.store_sets import StoreSets

__all__ = [
    "BankedRegisterFile",
    "FunctionalUnitConfig",
    "FunctionalUnitPool",
    "InflightOp",
    "IssueQueue",
    "LoadStoreQueue",
    "PRFPortBudget",
    "ReorderBuffer",
    "StoreSets",
    "UNKNOWN_CYCLE",
    "register_file_area_cost",
]
