"""Store Sets memory-dependence predictor (Chrysos & Emer, ISCA 1998).

The baseline machine (Table 1) uses a 1K-entry SSIT / 1K-entry LFST Store Sets
predictor: loads and stores that have conflicted in the past are assigned to the same
*store set*; a load dispatching while a store of its set is in flight must wait for that
store to execute before issuing.  This is what lets independent memory instructions
issue out of order without constant ordering violations.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.ooo.inflight import InflightOp


class StoreSets:
    """SSIT + LFST memory dependence predictor."""

    _INVALID = -1

    def __init__(self, ssit_entries: int = 1024, lfst_entries: int = 1024) -> None:
        for entries in (ssit_entries, lfst_entries):
            if entries <= 0:
                raise ConfigurationError("Store Sets table sizes must be positive")
        self.ssit_entries = ssit_entries
        self.lfst_entries = lfst_entries
        # Store Set ID Table: static PC -> store set id.
        self._ssit: list[int] = [self._INVALID] * ssit_entries
        # Last Fetched Store Table: store set id -> most recent in-flight store µ-op.
        self._lfst: list[InflightOp | None] = [None] * lfst_entries
        self._next_set_id = 0
        self.predicted_dependences = 0
        self.trained_violations = 0

    # ------------------------------------------------------------------ indexing
    def _ssit_index(self, pc: int) -> int:
        return pc % self.ssit_entries

    def _lfst_index(self, set_id: int) -> int:
        return set_id % self.lfst_entries

    # ------------------------------------------------------------------ dispatch hooks
    def dependence_for_load(self, load: InflightOp) -> InflightOp | None:
        """Store this load must wait for, according to its store set (``None`` if free)."""
        set_id = self._ssit[self._ssit_index(load.pc)]
        if set_id == self._INVALID:
            return None
        store = self._lfst[self._lfst_index(set_id)]
        if store is None or store.squashed or store.issued:
            return None
        self.predicted_dependences += 1
        return store

    def register_store(self, store: InflightOp) -> None:
        """Record a dispatching store as the last fetched store of its set."""
        set_id = self._ssit[self._ssit_index(store.pc)]
        if set_id == self._INVALID:
            return
        self._lfst[self._lfst_index(set_id)] = store

    def store_executed(self, store: InflightOp) -> None:
        """Clear the LFST entry when the store it names executes."""
        set_id = self._ssit[self._ssit_index(store.pc)]
        if set_id == self._INVALID:
            return
        index = self._lfst_index(set_id)
        if self._lfst[index] is store:
            self._lfst[index] = None

    def store_retired(self, store: InflightOp) -> None:
        """Drop any remaining LFST reference to a retiring store.

        Observably a no-op — a retired store has ``issued`` set, so
        :meth:`dependence_for_load` already ignored it — but required by the
        :class:`~repro.ooo.inflight.InflightOpPool` recycling protocol: a recycled
        record must not linger in the LFST where it could alias a later µ-op.
        """
        set_id = self._ssit[self._ssit_index(store.pc)]
        if set_id == self._INVALID:
            return
        index = self._lfst_index(set_id)
        if self._lfst[index] is store:
            self._lfst[index] = None

    # ------------------------------------------------------------------ training
    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Assign the violating load and store to a common store set."""
        self.trained_violations += 1
        load_index = self._ssit_index(load_pc)
        store_index = self._ssit_index(store_pc)
        load_set = self._ssit[load_index]
        store_set = self._ssit[store_index]
        if load_set == self._INVALID and store_set == self._INVALID:
            set_id = self._next_set_id
            self._next_set_id = (self._next_set_id + 1) % self.lfst_entries
            self._ssit[load_index] = set_id
            self._ssit[store_index] = set_id
        elif load_set == self._INVALID:
            self._ssit[load_index] = store_set
        elif store_set == self._INVALID:
            self._ssit[store_index] = load_set
        else:
            # Merge: both adopt the smaller set id (the paper's "store set merging").
            merged = min(load_set, store_set)
            self._ssit[load_index] = merged
            self._ssit[store_index] = merged

    def flush_lfst(self) -> None:
        """Invalidate all LFST entries (pipeline squash)."""
        self._lfst = [None] * self.lfst_entries
