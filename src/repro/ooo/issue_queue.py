"""The unified instruction queue (scheduler) of the out-of-order engine.

The baseline uses a unified, centralised 64-entry IQ (Table 1); entries are released at
issue.  Selection is age-ordered (oldest ready first), which is the behaviour the
paper's gem5 baseline models.  Wakeup is modelled by evaluating operand readiness
against producer completion times (see :meth:`IssueQueue.select`).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.ooo.functional_units import FunctionalUnitPool
from repro.ooo.inflight import InflightOp, UNKNOWN_CYCLE


class IssueQueue:
    """Bounded, age-ordered instruction queue with issue-width-limited select."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ConfigurationError("IQ capacity must be positive")
        self.capacity = capacity
        self._entries: list[InflightOp] = []
        self.peak_occupancy = 0
        self.full_stall_events = 0
        #: Byproduct of the last :meth:`select_ready` walk: the earliest future
        #: dispatch-maturity deadline among the entries it examined (``None`` when
        #: every examined entry was already mature).  Only meaningful when the walk
        #: covered the whole queue, i.e. when the issue width was *not* exhausted —
        #: the simulator only consults it in exactly those cases.
        self.next_immature_cycle: int | None = None

    # ------------------------------------------------------------------ capacity
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Current number of waiting µ-ops."""
        return len(self._entries)

    def has_space(self, count: int = 1) -> bool:
        """True if ``count`` more µ-ops fit."""
        return len(self._entries) + count <= self.capacity

    # ------------------------------------------------------------------ mutation
    def insert(self, op: InflightOp) -> None:
        """Dispatch ``op`` into the queue."""
        op.in_issue_queue = True
        self._entries.append(op)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        for producer in op.producers:
            if producer is not None:
                producer.iq_waiters += 1

    def _release_waiters(self, op: InflightOp) -> None:
        """Undo the producer waiter accounting of an entry leaving the queue."""
        for producer in op.producers:
            if producer is not None:
                producer.iq_waiters -= 1

    def remove_squashed(self) -> None:
        """Drop entries that have been squashed by a pipeline flush."""
        kept = []
        for op in self._entries:
            if op.squashed:
                self._release_waiters(op)
            else:
                kept.append(op)
        self._entries = kept

    # ------------------------------------------------------------------ select
    def select(
        self,
        cycle: int,
        issue_width: int,
        fu_pool: FunctionalUnitPool,
        is_ready: Callable[[InflightOp, int], bool],
        latency_of: Callable[[InflightOp], int],
    ) -> list[InflightOp]:
        """Select up to ``issue_width`` ready µ-ops, oldest first.

        ``is_ready`` decides operand/memory-dependence readiness at ``cycle``;
        ``latency_of`` supplies the execution latency used to reserve unpipelined units.
        Selected entries are removed from the queue (entries are released at issue, as
        in the baseline machine).
        """
        if not self._entries or issue_width <= 0:
            return []
        selected: list[InflightOp] = []
        remaining: list[InflightOp] = []
        # Entries are kept in dispatch order, so a single pass is age-ordered select.
        for op in self._entries:
            if len(selected) >= issue_width:
                remaining.append(op)
                continue
            if op.squashed:
                self._release_waiters(op)
                continue
            if not is_ready(op, cycle):
                remaining.append(op)
                continue
            if not fu_pool.try_issue(op.uop.opclass, cycle, latency_of(op)):
                remaining.append(op)
                continue
            op.issued = True
            op.issue_cycle = cycle
            op.in_issue_queue = False
            self._release_waiters(op)
            selected.append(op)
        self._entries = remaining
        return selected

    def select_ready(
        self,
        cycle: int,
        issue_width: int,
        fu_pool: FunctionalUnitPool,
        dispatch_to_issue_latency: int,
    ) -> list[InflightOp]:
        """The pipeline's hot-path select: :meth:`select` with the simulator's
        readiness and latency rules inlined.

        Semantically identical to calling :meth:`select` with the simulator's
        ``_is_ready``/``_execution_latency`` callbacks; inlining the per-entry
        readiness walk (operand wake-up against producer completion times, store-set
        memory dependences) avoids several function calls per waiting µ-op per cycle.
        """
        entries = self._entries
        self.next_immature_cycle = None
        if not entries or issue_width <= 0:
            return []
        selected: list[InflightOp] = []
        # ``remaining`` is created lazily at the first *removed* entry (a selection
        # or a squashed drop): the common nothing-issues scan then touches no lists
        # at all, and the queue object is left as-is.
        remaining: list[InflightOp] | None = None
        try_issue = fu_pool.try_issue
        width_left = issue_width
        for position, op in enumerate(entries):
            if width_left == 0:
                # Width exhausted: the untouched tail (squashed entries included,
                # matching select()) stays in dispatch order.
                remaining.extend(entries[position:])
                break
            if op.squashed:
                self._release_waiters(op)
                if remaining is None:
                    remaining = entries[:position]
                continue
            if cycle < op.dispatch_cycle + dispatch_to_issue_latency:
                # Entries are in dispatch order, so the first immature entry
                # carries the earliest maturity deadline — and everything after it
                # is immature too: stop the walk wholesale.
                self.next_immature_cycle = op.dispatch_cycle + dispatch_to_issue_latency
                if remaining is not None:
                    remaining.extend(entries[position:])
                break
            if cycle < op.wait_until:
                # A previous scan saw a producer with a known future availability;
                # re-walking the producers before that cycle cannot succeed.
                if remaining is not None:
                    remaining.append(op)
                continue
            ready = True
            for producer in op.producers:
                if producer is None:
                    continue
                # ``avail_cycle`` is maintained eagerly (dispatch for predicted /
                # early-executed results, issue for everything else), so operand
                # wake-up is a single field read per producer.
                available = producer.avail_cycle
                if available == UNKNOWN_CYCLE:
                    ready = False
                    break
                if available > cycle:
                    op.wait_until = available
                    ready = False
                    break
            if not ready:
                if remaining is not None:
                    remaining.append(op)
                continue
            uop = op.uop
            if uop.is_load:
                dependence = op.mem_dependence
                if dependence is not None and not dependence.squashed and not dependence.issued:
                    if remaining is not None:
                        remaining.append(op)
                    continue
            if not try_issue(uop.opclass, cycle, uop.latency):
                if remaining is not None:
                    remaining.append(op)
                continue
            op.issued = True
            op.issue_cycle = cycle
            op.in_issue_queue = False
            for producer in op.producers:
                if producer is not None:
                    producer.iq_waiters -= 1
            if remaining is None:
                remaining = entries[:position]
            selected.append(op)
            width_left -= 1
        if remaining is not None:
            self._entries = remaining
        return selected

    def next_maturity_cycle(self, cycle: int, dispatch_to_issue_latency: int) -> int | None:
        """Earliest future cycle at which a currently-immature entry matures.

        Reference implementation for :attr:`next_immature_cycle`, which
        :meth:`select_ready` produces as a byproduct of its walk (entries are in
        dispatch order, so the first immature entry carries the earliest
        deadline); the simulator's issue-scan gating re-arms on it when a scan
        leaves no immediately-issuable work behind.  Returns ``None`` when every
        entry is already past its dispatch-to-issue latency.
        """
        next_cycle: int | None = None
        for op in self._entries:
            mature_at = op.dispatch_cycle + dispatch_to_issue_latency
            if mature_at > cycle and (next_cycle is None or mature_at < next_cycle):
                next_cycle = mature_at
        return next_cycle

    def __iter__(self):
        return iter(self._entries)
