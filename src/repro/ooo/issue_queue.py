"""The unified instruction queue (scheduler) of the out-of-order engine.

The baseline uses a unified, centralised 64-entry IQ (Table 1); entries are released at
issue.  Selection is age-ordered (oldest ready first), which is the behaviour the
paper's gem5 baseline models.  Wakeup is modelled by evaluating operand readiness
against producer completion times (see :meth:`IssueQueue.select`).
"""

from __future__ import annotations

import os
from bisect import insort
from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.ooo.functional_units import FunctionalUnitPool
from repro.ooo.inflight import InflightOp, UNKNOWN_CYCLE

#: Environment variable: ``0`` selects the scan-based reference :class:`IssueQueue`
#: instead of the dependency-driven :class:`WakeupIssueQueue` (both byte-identical).
WAKEUP_ENV_VAR = "REPRO_WAKEUP_LISTS"

#: Sentinel for "no known future cycle" (mirrors the simulator's ``_NEVER``).
_NEVER = 1 << 62


def wakeup_lists_enabled() -> bool:
    """True unless ``REPRO_WAKEUP_LISTS=0`` selects the scan-based reference IQ."""
    return os.environ.get(WAKEUP_ENV_VAR, "1") != "0"


class IssueQueue:
    """Bounded, age-ordered instruction queue with issue-width-limited select."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ConfigurationError("IQ capacity must be positive")
        self.capacity = capacity
        self._entries: list[InflightOp] = []
        self.peak_occupancy = 0
        self.full_stall_events = 0
        #: Optional pipeline event tracer (repro.obs); the simulator attaches it
        #: when ``REPRO_PIPE_TRACE`` is enabled, otherwise every hook site is one
        #: ``is not None`` check.
        self.tracer = None
        #: Byproduct of the last :meth:`select_ready` walk: the earliest future
        #: dispatch-maturity deadline among the entries it examined (``None`` when
        #: every examined entry was already mature).  Only meaningful when the walk
        #: covered the whole queue, i.e. when the issue width was *not* exhausted —
        #: the simulator only consults it in exactly those cases.
        self.next_immature_cycle: int | None = None
        #: SoA column access (repro.ooo.inflight.ColumnarInflightOpPool): the
        #: simulator binds its pool so squash filtering can test the flag column
        #: instead of one property call per entry.  None under the object backend.
        self._pool = None

    def bind_pool(self, pool) -> None:
        """Attach the simulator's record pool; columnar pools enable SoA paths."""
        self._pool = pool if hasattr(pool, "c_flags") else None

    # ------------------------------------------------------------------ capacity
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Current number of waiting µ-ops."""
        return len(self._entries)

    def has_space(self, count: int = 1) -> bool:
        """True if ``count`` more µ-ops fit."""
        return len(self._entries) + count <= self.capacity

    # ------------------------------------------------------------------ mutation
    def insert(self, op: InflightOp) -> None:
        """Dispatch ``op`` into the queue."""
        op.in_issue_queue = True
        # Recycled records skip the ``wait_until`` reset in ``_init``; the insert
        # is the last writer before the scan reads it.
        op.wait_until = 0
        self._entries.append(op)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        for producer in op.producers:
            if producer is not None:
                producer.iq_waiters += 1

    def _release_waiters(self, op: InflightOp) -> None:
        """Undo the producer waiter accounting of an entry leaving the queue."""
        for producer in op.producers:
            if producer is not None:
                producer.iq_waiters -= 1

    def remove_squashed(self) -> None:
        """Drop entries that have been squashed by a pipeline flush."""
        pool = self._pool
        kept = []
        if pool is not None:
            c_flags = pool.c_flags
            for op in self._entries:
                if c_flags[op.slot] & 64:  # squashed
                    self._release_waiters(op)
                else:
                    kept.append(op)
        else:
            for op in self._entries:
                if op.squashed:
                    self._release_waiters(op)
                else:
                    kept.append(op)
        self._entries = kept

    # ------------------------------------------------------------------ select
    def select(
        self,
        cycle: int,
        issue_width: int,
        fu_pool: FunctionalUnitPool,
        is_ready: Callable[[InflightOp, int], bool],
        latency_of: Callable[[InflightOp], int],
    ) -> list[InflightOp]:
        """Select up to ``issue_width`` ready µ-ops, oldest first.

        ``is_ready`` decides operand/memory-dependence readiness at ``cycle``;
        ``latency_of`` supplies the execution latency used to reserve unpipelined units.
        Selected entries are removed from the queue (entries are released at issue, as
        in the baseline machine).
        """
        if not self._entries or issue_width <= 0:
            return []
        selected: list[InflightOp] = []
        remaining: list[InflightOp] = []
        # Entries are kept in dispatch order, so a single pass is age-ordered select.
        for op in self._entries:
            if len(selected) >= issue_width:
                remaining.append(op)
                continue
            if op.squashed:
                self._release_waiters(op)
                continue
            if not is_ready(op, cycle):
                remaining.append(op)
                continue
            if not fu_pool.try_issue(op.uop.opclass, cycle, latency_of(op)):
                remaining.append(op)
                continue
            op.issued = True
            op.issue_cycle = cycle
            op.in_issue_queue = False
            self._release_waiters(op)
            selected.append(op)
        self._entries = remaining
        return selected

    def select_ready(
        self,
        cycle: int,
        issue_width: int,
        fu_pool: FunctionalUnitPool,
        dispatch_to_issue_latency: int,
    ) -> list[InflightOp]:
        """The pipeline's hot-path select: :meth:`select` with the simulator's
        readiness and latency rules inlined.

        Semantically identical to calling :meth:`select` with the simulator's
        ``_is_ready``/``_execution_latency`` callbacks; inlining the per-entry
        readiness walk (operand wake-up against producer completion times, store-set
        memory dependences) avoids several function calls per waiting µ-op per cycle.
        """
        entries = self._entries
        self.next_immature_cycle = None
        if not entries or issue_width <= 0:
            return []
        selected: list[InflightOp] = []
        # ``remaining`` is created lazily at the first *removed* entry (a selection
        # or a squashed drop): the common nothing-issues scan then touches no lists
        # at all, and the queue object is left as-is.
        remaining: list[InflightOp] | None = None
        try_issue = fu_pool.try_issue
        width_left = issue_width
        for position, op in enumerate(entries):
            if width_left == 0:
                # Width exhausted: the untouched tail (squashed entries included,
                # matching select()) stays in dispatch order.
                remaining.extend(entries[position:])
                break
            if op.squashed:
                self._release_waiters(op)
                if remaining is None:
                    remaining = entries[:position]
                continue
            if cycle < op.dispatch_cycle + dispatch_to_issue_latency:
                # Entries are in dispatch order, so the first immature entry
                # carries the earliest maturity deadline — and everything after it
                # is immature too: stop the walk wholesale.
                self.next_immature_cycle = op.dispatch_cycle + dispatch_to_issue_latency
                if remaining is not None:
                    remaining.extend(entries[position:])
                break
            if cycle < op.wait_until:
                # A previous scan saw a producer with a known future availability;
                # re-walking the producers before that cycle cannot succeed.
                if remaining is not None:
                    remaining.append(op)
                continue
            ready = True
            for producer in op.producers:
                if producer is None:
                    continue
                # ``avail_cycle`` is maintained eagerly (dispatch for predicted /
                # early-executed results, issue for everything else), so operand
                # wake-up is a single field read per producer.
                available = producer.avail_cycle
                if available == UNKNOWN_CYCLE:
                    ready = False
                    break
                if available > cycle:
                    op.wait_until = available
                    ready = False
                    break
            if not ready:
                if remaining is not None:
                    remaining.append(op)
                continue
            uop = op.uop
            if uop.is_load:
                dependence = op.mem_dependence
                if dependence is not None and not dependence.squashed and not dependence.issued:
                    if remaining is not None:
                        remaining.append(op)
                    continue
            if not try_issue(uop.opclass, cycle, uop.latency):
                if remaining is not None:
                    remaining.append(op)
                continue
            op.issued = True
            op.issue_cycle = cycle
            op.in_issue_queue = False
            if self.tracer is not None:
                self.tracer.emit(cycle, "wakeup", op, "scan")
            for producer in op.producers:
                if producer is not None:
                    producer.iq_waiters -= 1
            if remaining is None:
                remaining = entries[:position]
            selected.append(op)
            width_left -= 1
        if remaining is not None:
            self._entries = remaining
        return selected

    def next_maturity_cycle(self, cycle: int, dispatch_to_issue_latency: int) -> int | None:
        """Earliest future cycle at which a currently-immature entry matures.

        Reference implementation for :attr:`next_immature_cycle`, which
        :meth:`select_ready` produces as a byproduct of its walk (entries are in
        dispatch order, so the first immature entry carries the earliest
        deadline); the simulator's issue-scan gating re-arms on it when a scan
        leaves no immediately-issuable work behind.  Returns ``None`` when every
        entry is already past its dispatch-to-issue latency.
        """
        next_cycle: int | None = None
        for op in self._entries:
            mature_at = op.dispatch_cycle + dispatch_to_issue_latency
            if mature_at > cycle and (next_cycle is None or mature_at < next_cycle):
                next_cycle = mature_at
        return next_cycle

    def __iter__(self):
        return iter(self._entries)


class WakeupIssueQueue(IssueQueue):
    """Dependency-driven wake-up IQ: O(woken) wake-up, O(ready) select.

    The reference :class:`IssueQueue` re-evaluates every waiting entry on every
    scan, making ``select_ready`` O(occupancy).  This subclass maintains the
    readiness state machine explicitly so a scan only touches entries that can
    actually issue:

    * each entry counts its producers with unknown availability
      (``unknown_producers``) and registers itself in their ``wake_consumers``
      lists; the **producer's issue** resolves all of them in O(consumers);
    * a load blocked on a store-set dependence (``mem_blocked``) registers in the
      store's ``mem_waiters`` list; the **store's issue** releases them — within
      the same selection pass, exactly like the reference walk, where a younger
      ready load issues in the same cycle its blocking store does;
    * once every gate is open, the entry's readiness cycle is exact —
      ``max(dispatch maturity, producer availabilities)`` — and the entry is
      parked on a time wheel (``_wake_buckets``) keyed by that cycle;
    * ``select_ready`` surfaces ripe buckets onto an age-ordered ready list and
      walks only that list, so selection is O(ready entries + woken entries).

    Squash safety: registrations carry the consumer's ``wake_gen`` token, bumped
    whenever a (possibly pooled and recycled) record is reinitialised, so a stale
    registration can never wake a record's next incarnation; squash additionally
    rebuilds the ready/wheel/maturity structures (:meth:`remove_squashed` was
    O(occupancy) already).

    Byte-identity with the reference is structural: the ready list reproduces, in
    age order, exactly the set of entries the reference walk would have found
    ready, so the ``fu_pool.try_issue`` call sequence, the selected µ-ops, the
    ``iq_waiters`` accounting and the :attr:`next_immature_cycle` byproduct are
    all identical (``tests/ooo/test_wakeup_issue_queue.py`` drives randomized
    dependence graphs with squashes/replays against the reference, and the
    determinism suite compares full-grid simulations).
    """

    def __init__(self, capacity: int = 64, dispatch_to_issue_latency: int = 1) -> None:
        super().__init__(capacity)
        self._d2i = dispatch_to_issue_latency
        # Authoritative membership: seq -> entry, in dispatch (insertion) order.
        self._members: dict[int, InflightOp] = {}
        # Age-ordered ``(seq, op)`` pairs whose every issue gate is open now.
        self._ready: list[tuple[int, InflightOp]] = []
        # Time wheel: readiness cycle -> [(op, wake_gen), ...].  ``_wake_min``
        # caches the earliest bucket; together with the ready list it replaces
        # the reference's conservative scan re-arm heuristics (maturity
        # deadlines, completion ``iq_waiters`` re-arms) with exact deadlines:
        # a scan before ``_wake_min`` with an empty ready list is provably
        # empty, and an empty scan is observably a no-op, so skipping it is
        # invisible even where the reference would have walked.
        self._wake_buckets: dict[int, list] = {}
        self._wake_min = _NEVER

    # ------------------------------------------------------------------ capacity
    def __len__(self) -> int:
        return len(self._members)

    @property
    def occupancy(self) -> int:
        return len(self._members)

    def has_space(self, count: int = 1) -> bool:
        return len(self._members) + count <= self.capacity

    def __iter__(self):
        return iter(self._members.values())

    # ------------------------------------------------------------------ mutation
    def insert(self, op: InflightOp) -> None:
        """Dispatch ``op``: register with unresolved producers, park by deadline."""
        op.in_issue_queue = True
        members = self._members
        members[op.seq] = op
        if len(members) > self.peak_occupancy:
            self.peak_occupancy = len(members)
        gen = op.wake_gen
        unknown = 0
        ready_at = op.dispatch_cycle + self._d2i
        for producer in op.producers:
            if producer is None:
                continue
            avail = producer.avail_cycle
            if avail == UNKNOWN_CYCLE:
                unknown += 1
                consumers = producer.wake_consumers
                if consumers is None:
                    producer.wake_consumers = [(op, gen)]
                else:
                    consumers.append((op, gen))
            elif avail > ready_at:
                ready_at = avail
        op.unknown_producers = unknown
        # ``mem_dependence`` is only assigned (at dispatch) for loads; recycled
        # records carry a stale value for other µ-ops, so gate on the µ-op kind.
        dependence = op.mem_dependence if op.uop.is_load else None
        if dependence is not None:
            op.mem_blocked = True
            waiters = dependence.mem_waiters
            if waiters is None:
                dependence.mem_waiters = [(op, gen)]
            else:
                waiters.append((op, gen))
        else:
            op.mem_blocked = False
            if not unknown:
                self._park(op, gen, ready_at)

    def _park(self, op: InflightOp, gen: int, ready_at: int) -> None:
        """Wheel ``op`` to surface on the ready list at the first scan >= ready_at."""
        buckets = self._wake_buckets
        bucket = buckets.get(ready_at)
        if bucket is None:
            buckets[ready_at] = [(op, gen)]
            if ready_at < self._wake_min:
                self._wake_min = ready_at
        else:
            bucket.append((op, gen))

    def _ready_cycle(self, op: InflightOp) -> int:
        """Exact readiness cycle of an entry whose gates are all resolved."""
        ready_at = op.dispatch_cycle + self._d2i
        for producer in op.producers:
            if producer is not None and producer.avail_cycle > ready_at:
                ready_at = producer.avail_cycle
        return ready_at

    def producer_available(self, producer: InflightOp) -> None:
        """O(consumers) wake-up: ``producer``'s availability cycle became known."""
        consumers = producer.wake_consumers
        if not consumers:
            return
        producer.wake_consumers = None
        for op, gen in consumers:
            if op.wake_gen != gen or op.squashed:
                continue
            remaining = op.unknown_producers - 1
            op.unknown_producers = remaining
            if not remaining and not op.mem_blocked:
                self._park(op, gen, self._ready_cycle(op))

    def remove_squashed(self) -> None:
        members = self._members
        pool = self._pool
        if pool is not None:
            c_flags = pool.c_flags
            c_wake_gen = pool.c_wake_gen
            squashed = [op for op in members.values() if c_flags[op.slot] & 64]
            if not squashed:
                return
            for op in squashed:
                del members[op.seq]
            self._ready = [
                pair for pair in self._ready if not c_flags[pair[1].slot] & 64
            ]
            buckets = self._wake_buckets
            if buckets:
                for ready_at in list(buckets):
                    kept = [
                        entry
                        for entry in buckets[ready_at]
                        if c_wake_gen[entry[0].slot] == entry[1]
                        and not c_flags[entry[0].slot] & 64
                    ]
                    if kept:
                        buckets[ready_at] = kept
                    else:
                        del buckets[ready_at]
                self._wake_min = min(buckets) if buckets else _NEVER
            return
        squashed = [op for op in members.values() if op.squashed]
        if not squashed:
            return
        for op in squashed:
            del members[op.seq]
        self._ready = [pair for pair in self._ready if not pair[1].squashed]
        buckets = self._wake_buckets
        if buckets:
            for ready_at in list(buckets):
                kept = [
                    entry
                    for entry in buckets[ready_at]
                    if entry[0].wake_gen == entry[1] and not entry[0].squashed
                ]
                if kept:
                    buckets[ready_at] = kept
                else:
                    del buckets[ready_at]
            self._wake_min = min(buckets) if buckets else _NEVER

    # ------------------------------------------------------------------ select
    def select(self, *args, **kwargs):  # pragma: no cover - guard rail
        raise NotImplementedError(
            "WakeupIssueQueue only implements the pipeline's select_ready walk; "
            "use the reference IssueQueue for callback-driven selection"
        )

    def select_ready(
        self,
        cycle: int,
        issue_width: int,
        fu_pool: FunctionalUnitPool,
        dispatch_to_issue_latency: int,
    ) -> list[InflightOp]:
        """Age-ordered select over the maintained ready list (O(ready + woken)).

        The wake-up IQ schedules by exact deadlines (``_wake_min`` plus a
        non-empty ready list), so the reference's ``next_immature_cycle``
        byproduct is meaningless here and always ``None``.
        """
        # Surface entries whose readiness deadline has passed.
        if self._wake_min <= cycle:
            self._surface_ripe(cycle)
        self.next_immature_cycle = None
        ready = self._ready
        if not ready or issue_width <= 0:
            return []
        selected: list[InflightOp] = []
        members = self._members
        try_issue = fu_pool.try_issue
        width_left = issue_width
        index = 0
        while index < len(ready) and width_left:
            seq, op = ready[index]
            uop = op.uop
            if not try_issue(uop.opclass, cycle, uop.latency):
                index += 1
                continue
            del ready[index]
            del members[seq]
            op.issued = True
            op.issue_cycle = cycle
            op.in_issue_queue = False
            selected.append(op)
            width_left -= 1
            if uop.is_store:
                # Store-set release: dependent loads (always younger, hence later
                # in age order) become selectable within this very pass, exactly
                # like the reference walk observing ``dependence.issued``.
                waiters = op.mem_waiters
                if waiters:
                    op.mem_waiters = None
                    for waiter, gen in waiters:
                        if waiter.wake_gen != gen or waiter.squashed:
                            continue
                        waiter.mem_blocked = False
                        if waiter.unknown_producers:
                            continue
                        ready_at = self._ready_cycle(waiter)
                        if ready_at <= cycle:
                            insort(ready, (waiter.seq, waiter))
                            if self.tracer is not None:
                                self.tracer.emit(cycle, "wakeup", waiter, "store_release")
                        else:
                            self._park(waiter, gen, ready_at)
        return selected

    def _surface_ripe(self, cycle: int) -> None:
        """Move every wheel entry whose readiness cycle has passed onto the ready list."""
        buckets = self._wake_buckets
        ready = self._ready
        tracer = self.tracer
        added = False
        while buckets:
            key = self._wake_min
            if key > cycle:
                break
            for op, gen in buckets.pop(key):
                if op.wake_gen == gen and not op.squashed:
                    ready.append((op.seq, op))
                    added = True
                    if tracer is not None:
                        tracer.emit(cycle, "wakeup", op, "wheel")
            self._wake_min = min(buckets) if buckets else _NEVER
        if added:
            ready.sort()

    def next_maturity_cycle(self, cycle: int, dispatch_to_issue_latency: int) -> int | None:  # pragma: no cover - guard rail
        raise NotImplementedError(
            "the wake-up IQ schedules by exact wheel deadlines (_wake_min), not "
            "maturity walks; use the reference IssueQueue for this API"
        )
