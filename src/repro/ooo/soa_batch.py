"""Optional numpy batch kernels over the SoA columns (``REPRO_SOA_BATCH=1``).

Two narrowly scoped kernels, both byte-identical to the scalar loops they
replace and both *opt-in* (the env switch defaults to off; see
:data:`repro.ooo.inflight.SOA_BATCH_ENV_VAR`):

* :func:`drain_completions_batch` — completion-wheel drain: clear the wheel
  flag and set ``executed`` for a whole drained list in two vectorised stores.
  Only safe for drains with **no stores and no squashed entries** — a mid-drain
  store can raise a memory-order violation that squashes later entries of the
  same list, so any precomputed mask would go stale.  The kernel verifies the
  precondition itself (against the flag/kind columns) and refuses otherwise.
* :func:`record_outcome_counts` — commit-group validation: the
  correct/incorrect/unused outcome tallies of one commit group's predictions as
  three ``uint64`` equality-mask reductions.  The counts are order-independent
  sums, so batching them never perturbs the per-item FPC training order.

The zero-copy ``c_hot`` view is created per call with :func:`numpy.frombuffer`
— holding a persistent view over an ``array`` column would make the arena
unable to grow (``BufferError`` on resize); the list-backed flag columns are
gathered with :func:`numpy.fromiter`.  When numpy is missing the module
degrades to :func:`batch_available` returning False and the simulator keeps the
scalar paths; nothing is installed on demand.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised indirectly via batch_available()
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in the dev image
    _np = None

# Flag-column bit positions, mirroring repro.ooo.inflight.  Mirrored rather
# than imported: this module is reachable from the predictor stack (vp.hybrid
# imports the outcome kernel) while inflight sits above that stack, so an
# import here would be circular.  tests/ooo asserts the mirror stays in sync.
F_EXECUTED = 32
F_SQUASHED = 64
F2_IN_COMPLETION_WHEEL = 2

#: Minimum drained-list length before the wheel kernel beats the scalar loop.
#: Deterministic gate: it depends only on the (deterministic) drain size.
DRAIN_MIN_BATCH = 8

#: Minimum commit-group length for the validation kernel (commit groups are
#: bounded by ``commit_width``, so this mostly fires on wide-commit configs).
VALIDATE_MIN_BATCH = 4


def batch_available() -> bool:
    """True when numpy is importable (the kernels can run)."""
    return _np is not None


def drain_completions_batch(pool, ops) -> bool:
    """Vectorised completion-wheel drain over ``pool``'s flag columns.

    Returns True when the drain was handled: every op in ``ops`` had its
    ``in_completion_wheel`` flag cleared and ``executed`` set.  Returns False —
    having mutated **nothing** — when the list contains a store or a squashed
    entry (the scalar loop must run: store execution can squash mid-drain, and
    squashed entries must be released, not marked executed).
    """
    np = _np
    if np is None:
        return False
    count = len(ops)
    c_flags = pool.c_flags
    slot_list = [op.slot for op in ops]
    flags = np.fromiter((c_flags[slot] for slot in slot_list), dtype=np.uint8, count=count)
    if (flags & F_SQUASHED).any():
        return False
    slots = np.asarray(slot_list, dtype=np.intp)
    hot = np.frombuffer(pool.c_hot, dtype=np.int64)
    if (hot[slots] & 8).any():  # store
        return False
    # The flag columns are plain lists (scalar stage loops own them — see
    # ColumnarInflightOpPool.__init__), so the writeback is a fused scalar
    # sweep; the batch win here is the two vectorised precondition reductions
    # replacing per-op squash/store tests.
    c_flags2 = pool.c_flags2
    keep = 0xFF ^ F2_IN_COMPLETION_WHEEL
    for slot in slot_list:
        c_flags2[slot] &= keep
        c_flags[slot] |= F_EXECUTED
    return True


def record_outcome_counts(actuals, predictions):
    """Outcome tallies ``(correct_used, incorrect_used, unused_correct)`` for one
    commit group, or None when the group is not batchable.

    Batchable means: every prediction is non-None and every value fits
    ``uint64`` (the predictors mask to 64 bits; out-of-range values fall back
    to the scalar loop rather than wrapping differently).
    """
    np = _np
    if np is None:
        return None
    count = len(actuals)
    try:
        values = np.fromiter(
            (prediction.value for prediction in predictions),
            dtype=np.uint64,
            count=count,
        )
        actual_column = np.fromiter(actuals, dtype=np.uint64, count=count)
    except (AttributeError, OverflowError, ValueError):
        # A None prediction or a value outside uint64: scalar loop territory.
        return None
    confident = np.fromiter(
        (prediction.confident for prediction in predictions),
        dtype=np.bool_,
        count=count,
    )
    correct = values == actual_column
    correct_used = int(np.count_nonzero(correct & confident))
    incorrect_used = int(np.count_nonzero(confident)) - correct_used
    unused_correct = int(np.count_nonzero(correct & ~confident))
    return correct_used, incorrect_used, unused_correct
