"""Reorder Buffer (ROB).

Holds every in-flight µ-op in program order between dispatch and commit.  The baseline
machine uses a 192-entry ROB (Table 1, on par with Haswell).
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError, SimulationError
from repro.ooo.inflight import InflightOp


class ReorderBuffer:
    """A bounded, in-order buffer of in-flight µ-ops."""

    def __init__(self, capacity: int = 192) -> None:
        if capacity <= 0:
            raise ConfigurationError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: deque[InflightOp] = deque()
        self.peak_occupancy = 0
        self.full_stall_cycles = 0

    # ------------------------------------------------------------------ capacity
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Current number of in-flight µ-ops."""
        return len(self._entries)

    def has_space(self, count: int = 1) -> bool:
        """True if ``count`` more µ-ops fit."""
        return len(self._entries) + count <= self.capacity

    @property
    def is_empty(self) -> bool:
        """True when no µ-op is in flight."""
        return not self._entries

    # ------------------------------------------------------------------ mutation
    def push(self, op: InflightOp) -> None:
        """Insert ``op`` at the tail (dispatch order)."""
        if not self.has_space():
            raise SimulationError("ROB overflow: push called without space")
        if self._entries and op.seq <= self._entries[-1].seq:
            raise SimulationError("ROB entries must be pushed in increasing sequence order")
        self.push_renamed(op)

    def push_renamed(self, op: InflightOp) -> None:
        """:meth:`push` without the overflow/ordering guards.

        Hot-path variant for the dispatch stage, which checks :meth:`has_space`
        itself and dispatches in sequence order by construction.
        """
        entries = self._entries
        entries.append(op)
        if len(entries) > self.peak_occupancy:
            self.peak_occupancy = len(entries)

    def head(self) -> InflightOp | None:
        """Oldest in-flight µ-op, or ``None`` when empty."""
        return self._entries[0] if self._entries else None

    def pop_head(self) -> InflightOp:
        """Remove and return the oldest µ-op (commit)."""
        if not self._entries:
            raise SimulationError("ROB underflow: pop_head on empty ROB")
        return self._entries.popleft()

    def squash_from(self, seq: int) -> list[InflightOp]:
        """Remove every µ-op with sequence number >= ``seq`` (youngest first in the ROB tail).

        Returns the squashed µ-ops in program order.  Used for value-misprediction and
        memory-order-violation recovery.
        """
        squashed: list[InflightOp] = []
        while self._entries and self._entries[-1].seq >= seq:
            op = self._entries.pop()
            op.squashed = True
            squashed.append(op)
        squashed.reverse()
        return squashed

    def __iter__(self):
        return iter(self._entries)
