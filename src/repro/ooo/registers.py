"""Physical Register File (PRF) model: banking, port budgets and area accounting.

EOLE's hardware argument (Section 6) revolves around PRF ports:

* value prediction needs extra *write* ports (predictions written at dispatch) and
  extra *read* ports (validation/training and Late Execution at the pre-commit stage);
* banking the PRF and allocating the destination registers of consecutive µ-ops to
  different banks caps the per-bank port requirement (Fig. 9/10);
* limiting the LE/VT read ports per bank (Fig. 11) trades a little performance for a
  register file whose total port count matches a 6-issue baseline *without* VP.

This module models exactly those mechanisms: round-robin bank allocation, per-bank
free-register accounting (the "load unbalancing" stall of Fig. 10), and per-cycle
per-bank port budgets for Early-Execution/prediction writes and LE/VT reads.  It also
implements the paper's area-cost proportionality formula ``(R + W) * (R + 2W)``
(Zyuban & Kogge) used in Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def register_file_area_cost(read_ports: int, write_ports: int) -> int:
    """Relative area cost of a register file: ``(R + W) * (R + 2W)`` (Section 6.2)."""
    return (read_ports + write_ports) * (read_ports + 2 * write_ports)


@dataclass
class PRFPortBudget:
    """Per-bank, per-cycle port budgets.  ``None`` means unconstrained."""

    ee_write_ports_per_bank: int | None = None
    levt_read_ports_per_bank: int | None = None


class BankedRegisterFile:
    """Banked PRF with per-bank free lists and per-cycle port accounting."""

    def __init__(
        self,
        num_banks: int = 1,
        total_registers: int = 256,
        architectural_registers: int = 65,
        budget: PRFPortBudget | None = None,
    ) -> None:
        if num_banks <= 0 or total_registers <= 0:
            raise ConfigurationError("PRF banks and register count must be positive")
        if total_registers % num_banks:
            raise ConfigurationError("PRF registers must divide evenly across banks")
        if total_registers <= architectural_registers:
            raise ConfigurationError("PRF must be larger than the architectural register set")
        self.num_banks = num_banks
        self.total_registers = total_registers
        self.registers_per_bank = total_registers // num_banks
        self.budget = budget if budget is not None else PRFPortBudget()
        # Architectural state is spread across the banks; those registers are never free.
        base_share = architectural_registers // num_banks
        remainder = architectural_registers % num_banks
        self._reserved = [base_share + (1 if bank < remainder else 0) for bank in range(num_banks)]
        self._allocated = [0] * num_banks
        self._allocation_pointer = 0
        # Lazy per-cycle port counters.
        self._port_cycle = -1
        self._ee_writes_used = [0] * num_banks
        self._levt_reads_used = [0] * num_banks
        # Statistics.
        self.bank_full_stalls = 0
        self.ee_write_port_stalls = 0
        self.levt_read_port_stalls = 0

    # ------------------------------------------------------------------ allocation
    def next_bank(self) -> int:
        """Bank the next dispatched destination register will be allocated in."""
        return self._allocation_pointer

    def can_allocate(self) -> bool:
        """True if the current allocation bank still has a free physical register."""
        bank = self._allocation_pointer
        in_use = self._reserved[bank] + self._allocated[bank]
        return in_use < self.registers_per_bank

    def allocate(self) -> int:
        """Allocate a destination register in the current bank and advance the pointer."""
        bank = self._allocation_pointer
        self._allocated[bank] += 1
        self._allocation_pointer = (self._allocation_pointer + 1) % self.num_banks
        return bank

    def advance_without_allocation(self) -> None:
        """Advance the round-robin pointer for a µ-op with no destination register."""
        self._allocation_pointer = (self._allocation_pointer + 1) % self.num_banks

    def release(self, bank: int) -> None:
        """Free one physical register of ``bank`` (commit of the overwriting µ-op)."""
        if self._allocated[bank] > 0:
            self._allocated[bank] -= 1

    def record_bank_full_stall(self, cycles: int = 1) -> None:
        """Account rename stalls caused by an exhausted bank (Fig. 10's unbalancing).

        ``cycles`` lets the event-driven scheduler credit a whole skipped stall span
        at once (the reference loop counts one per stalled cycle).
        """
        self.bank_full_stalls += cycles

    def occupancy(self, bank: int) -> int:
        """Physical registers currently in use in ``bank`` (including architectural)."""
        return self._reserved[bank] + self._allocated[bank]

    # ------------------------------------------------------------------ port accounting
    def _roll_cycle(self, cycle: int) -> None:
        if cycle != self._port_cycle:
            self._port_cycle = cycle
            self._ee_writes_used = [0] * self.num_banks
            self._levt_reads_used = [0] * self.num_banks

    def try_ee_write(self, bank: int, cycle: int) -> bool:
        """Claim one Early-Execution/prediction write port on ``bank`` at ``cycle``."""
        limit = self.budget.ee_write_ports_per_bank
        if limit is None:
            return True
        self._roll_cycle(cycle)
        if self._ee_writes_used[bank] >= limit:
            self.ee_write_port_stalls += 1
            return False
        self._ee_writes_used[bank] += 1
        return True

    def try_levt_reads(self, banks: list[int], cycle: int) -> bool:
        """Claim LE/VT read ports (one per entry of ``banks``) atomically at ``cycle``.

        Either all requested reads fit within the per-bank budgets (and are consumed) or
        none are, so the commit stage can retry the whole µ-op next cycle.
        """
        limit = self.budget.levt_read_ports_per_bank
        if limit is None or not banks:
            return True
        self._roll_cycle(cycle)
        if len(banks) == 1:
            # Single-read fast path (the dominant case: validation-only µ-ops),
            # including the general path's monopolise-an-idle-bank rule.
            bank = banks[0]
            used = self._levt_reads_used[bank]
            if used + 1 > limit and not (limit < 1 and used == 0):
                self.levt_read_port_stalls += 1
                return False
            self._levt_reads_used[bank] = min(self.registers_per_bank, used + 1)
            return True
        needed: dict[int, int] = {}
        for bank in banks:
            needed[bank] = needed.get(bank, 0) + 1
        for bank, count in needed.items():
            if self._levt_reads_used[bank] + count > limit:
                # A request wider than the per-bank budget is allowed to monopolise an
                # otherwise-unused bank for the cycle (in hardware it would serialise
                # over multiple cycles); anything else must retry next cycle.
                if count > limit and self._levt_reads_used[bank] == 0:
                    continue
                self.levt_read_port_stalls += 1
                return False
        for bank, count in needed.items():
            self._levt_reads_used[bank] = min(
                self.registers_per_bank, self._levt_reads_used[bank] + count
            )
        return True
