"""Functional-unit pool of the out-of-order engine.

Table 1's baseline provides 6 ALUs (1 cycle), 4 Mul/Div units (3/25 cycles, divide not
pipelined), 6 FP units (3 cycles), 4 FPMul/Div units (5/10 cycles, divide not
pipelined) and 4 load/store ports.  The pool enforces per-cycle structural limits and
models the busy time of unpipelined units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.isa.opcode import OpClass, UNPIPELINED_CLASSES


@dataclass
class FunctionalUnitConfig:
    """Number of functional units of each kind (defaults from Table 1)."""

    alu: int = 6
    mul_div: int = 4
    fp: int = 6
    fp_mul_div: int = 4
    mem_ports: int = 4

    def units_for(self, opclass: OpClass) -> int:
        """Number of units able to execute ``opclass``."""
        group = _CLASS_GROUP[opclass]
        return {
            "alu": self.alu,
            "mul_div": self.mul_div,
            "fp": self.fp,
            "fp_mul_div": self.fp_mul_div,
            "mem": self.mem_ports,
        }[group]


#: Which pool an operation class draws from.
_CLASS_GROUP: dict[OpClass, str] = {
    OpClass.INT_ALU: "alu",
    OpClass.BR_COND: "alu",
    OpClass.BR_DIRECT: "alu",
    OpClass.BR_INDIRECT: "alu",
    OpClass.CALL: "alu",
    OpClass.RET: "alu",
    OpClass.NOP: "alu",
    OpClass.INT_MUL: "mul_div",
    OpClass.INT_DIV: "mul_div",
    OpClass.FP_ALU: "fp",
    OpClass.FP_MUL: "fp_mul_div",
    OpClass.FP_DIV: "fp_mul_div",
    OpClass.LOAD: "mem",
    OpClass.STORE: "mem",
}


@dataclass
class _GroupState:
    """Per-cycle usage and unpipelined busy tracking of one unit group."""

    units: int
    used_cycle: int = -1
    used_count: int = 0
    busy_until: list[int] = field(default_factory=list)


class FunctionalUnitPool:
    """Per-cycle structural hazard model for the execution units."""

    def __init__(self, config: FunctionalUnitConfig | None = None) -> None:
        self.config = config if config is not None else FunctionalUnitConfig()
        for name in ("alu", "mul_div", "fp", "fp_mul_div", "mem_ports"):
            if getattr(self.config, name) <= 0:
                raise ConfigurationError(f"functional unit count {name} must be positive")
        self._groups: dict[str, _GroupState] = {
            "alu": _GroupState(self.config.alu),
            "mul_div": _GroupState(self.config.mul_div, busy_until=[0] * self.config.mul_div),
            "fp": _GroupState(self.config.fp),
            "fp_mul_div": _GroupState(
                self.config.fp_mul_div, busy_until=[0] * self.config.fp_mul_div
            ),
            "mem": _GroupState(self.config.mem_ports),
        }
        # One-lookup issue path: opclass -> (group state, models unpipelined busy).
        self._issue_info: dict[OpClass, tuple[_GroupState, bool]] = {
            opclass: (
                self._groups[name],
                opclass in UNPIPELINED_CLASSES and bool(self._groups[name].busy_until),
            )
            for opclass, name in _CLASS_GROUP.items()
        }
        self.structural_rejects = 0

    def _group_of(self, opclass: OpClass) -> _GroupState:
        return self._groups[_CLASS_GROUP[opclass]]

    def try_issue(self, opclass: OpClass, cycle: int, latency: int) -> bool:
        """Try to claim a unit of the right kind at ``cycle``; returns success."""
        group, unpipelined = self._issue_info[opclass]
        if group.used_cycle != cycle:
            group.used_cycle = cycle
            group.used_count = 0
        if group.used_count >= group.units:
            self.structural_rejects += 1
            return False
        if unpipelined:
            # Find an unpipelined unit that is free; occupy it for the full latency.
            for index, busy_until in enumerate(group.busy_until):
                if busy_until <= cycle:
                    group.busy_until[index] = cycle + latency
                    break
            else:
                self.structural_rejects += 1
                return False
        group.used_count += 1
        return True
