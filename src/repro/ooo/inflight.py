"""In-flight instruction records used by the timing pipeline.

An :class:`InflightOp` wraps one :class:`~repro.isa.trace.DynInst` while it lives in the
machine, carrying the timing fields that the fetch, rename/dispatch, issue, execute and
commit models fill in.  It is deliberately a plain ``__slots__`` record (not a
dataclass) because hundreds of thousands of them are created per simulation.

:class:`InflightOpPool` removes even that churn: records live in an append-only arena
(an array of records addressed by ``slot`` index) and recycle through an integer
free-list column, so a steady-state simulation allocates a bounded working set of
records once and then reuses them.  Recycling is only safe once nothing can read a
record any more — the pipeline enforces that with a retirement barrier (see
:meth:`InflightOpPool.retire`), because younger issue-queue entries keep reading their
producers' timing fields until they issue.
"""

from __future__ import annotations

from collections import deque

from repro.bpu.unit import BranchOutcome
from repro.isa.trace import DynInst
from repro.vp.base import VPrediction

#: Sentinel used for "not yet known" cycle fields.
UNKNOWN_CYCLE = -1


class InflightOp:
    """One µ-op in flight between fetch and commit."""

    __slots__ = (
        "dyn",
        "seq",
        "pc",
        "uop",
        # Timing.
        "fetch_cycle",
        "dispatch_ready_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        # Wake-up shortcut: the cycle from which dependents may consume this µ-op's
        # result (= result_available_cycle(), maintained eagerly at dispatch/issue so
        # the issue scan reads one field per producer).
        "avail_cycle",
        # Issue-scan skip cache: the earliest cycle a known-unavailable producer
        # becomes readable; scans before it skip this entry with one compare.
        "wait_until",
        # Number of issue-queue entries renamed against this µ-op that are still
        # waiting to issue — a completion only needs to re-arm the issue scan when
        # the completing producer actually has waiters.
        "iq_waiters",
        # Dataflow.
        "producers",
        "mem_dependence",
        # Value prediction.
        "prediction",
        "pred_used",
        # EOLE.
        "early_executed",
        "late_executed",
        # Branch prediction.
        "branch_outcome",
        # Bookkeeping.
        "in_issue_queue",
        "issued",
        "executed",
        "squashed",
        "dest_bank",
        "history_snapshot",
        "load_forwarded",
        # Dependency-driven wake-up (see ooo.issue_queue.WakeupIssueQueue).
        # ``wake_gen`` is bumped on every (re)initialisation so that stale
        # registrations in a producer's consumer list are recognisable after the
        # record has been recycled; ``unknown_producers`` counts producers whose
        # availability cycle is not yet known; ``mem_blocked`` is the store-set
        # gate; the two lists hold ``(consumer, wake_gen)`` registrations.
        "wake_gen",
        "unknown_producers",
        "mem_blocked",
        "wake_consumers",
        "mem_waiters",
        # Pooling: arena index (-1 when unpooled) and completion-wheel membership.
        "slot",
        "in_completion_wheel",
    )

    def __init__(self, dyn: DynInst) -> None:
        self.slot = -1
        self.wake_gen = 0
        # Fields the fetch stage overwrites before anything reads them — reset here
        # for directly-constructed records, skipped by the pool's recycle path (the
        # only acquire site is fetch, which assigns all of them immediately).
        self.fetch_cycle = UNKNOWN_CYCLE
        self.dispatch_ready_cycle = UNKNOWN_CYCLE
        self.history_snapshot = 0
        # Fields only ever read after a later stage wrote them (or by debugging /
        # tests), plus the completion-wheel flag, which is invariantly False for any
        # record on the free list (it is cleared when the stale entry pops, before
        # the release).
        self.issue_cycle = UNKNOWN_CYCLE
        self.commit_cycle = UNKNOWN_CYCLE
        self.in_completion_wheel = False
        # One-time defaults for the fields ``_init`` deliberately does not reset
        # (a recycled record carries its previous incarnation's values there; see
        # the invariant note at the end of ``_init``).
        self.dispatch_cycle = UNKNOWN_CYCLE
        self.complete_cycle = UNKNOWN_CYCLE
        self.wait_until = 0
        self.unknown_producers = 0
        self.mem_blocked = False
        self.producers: tuple[InflightOp | None, ...] = ()
        self.mem_dependence: InflightOp | None = None
        self.branch_outcome: BranchOutcome | None = None
        self._init(dyn)

    def _init(self, dyn: DynInst) -> None:
        """(Re)initialise the per-µ-op fields shared by ``__init__`` and the pool.

        A recycled record must be indistinguishable from a freshly constructed one
        on every path that can read it — the bit-identical determinism suite
        compares pooled and unpooled simulations.  Fields listed in ``__init__``
        are exempt only because fetch overwrites them before any read; a second
        group of fields is exempt because a *later* stage overwrites them before
        any read (see the end of this method).
        """
        self.dyn = dyn
        self.seq = dyn.seq
        self.pc = dyn.pc
        self.uop = dyn.uop
        # A recycled record must never satisfy a wake-up registered against its
        # previous incarnation: the generation token invalidates them all at once.
        self.wake_gen += 1
        self.wake_consumers = None
        self.mem_waiters = None
        self.avail_cycle = UNKNOWN_CYCLE
        self.iq_waiters = 0
        # Fetch only assigns predictions to VP-eligible µ-ops: clear here so a
        # recycled record never pins (or leaks) another µ-op's prediction.
        self.prediction: VPrediction | None = None
        self.pred_used = False
        self.early_executed = False
        self.late_executed = False
        self.in_issue_queue = False
        self.issued = False
        self.executed = False
        self.squashed = False
        self.dest_bank = 0
        self.load_forwarded = False
        # Deliberately NOT reset (overwritten before any read, so a stale value
        # from the previous incarnation is unobservable):
        #
        # * ``dispatch_cycle``/``producers`` — assigned by rename/dispatch; only
        #   read for dispatched µ-ops (issue-queue walks, EE planning, LE/VT port
        #   model, squash PRF release, all post-dispatch);
        # * ``complete_cycle`` — every read is gated on ``executed`` (reset
        #   above), which is only set together with or after the assignment;
        # * ``mem_dependence`` — assigned at dispatch for every load; reads are
        #   guarded by ``uop.is_load``;
        # * ``branch_outcome`` — assigned at fetch for every branch; reads are
        #   guarded by ``uop.is_branch``/``is_conditional_branch``;
        # * ``wait_until``/``unknown_producers``/``mem_blocked`` — assigned by
        #   the (reference / wake-up) issue-queue insert before any read.

    # ------------------------------------------------------------------ dataflow helpers
    def result_available_cycle(self) -> int:
        """Cycle from which dependents may consume this µ-op's register result.

        Predicted (used) and early-executed results are written to the PRF at dispatch,
        so they are available from the dispatch cycle; everything else becomes available
        when execution completes.  Returns :data:`UNKNOWN_CYCLE` if not yet known.
        """
        if self.pred_used or self.early_executed:
            return self.dispatch_cycle
        return self.complete_cycle

    def bypasses_ooo_engine(self) -> bool:
        """True if this µ-op never enters the out-of-order engine (EOLE's offload)."""
        return self.early_executed or self.late_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InflightOp(seq={self.seq}, pc={self.pc}, op={self.uop.opcode.value}, "
            f"dispatch={self.dispatch_cycle}, issue={self.issue_cycle}, "
            f"complete={self.complete_cycle}, ee={self.early_executed}, le={self.late_executed})"
        )


class InflightOpPool:
    """Free-list pool of :class:`InflightOp` records over an array-of-records arena.

    Storage is columnar in the pool's own bookkeeping: ``_arena`` is an append-only
    array of records addressed by each record's ``slot`` index, ``_free`` is an integer
    column of recyclable slots, and ``_deferred`` is the retirement queue of
    ``(barrier_seq, slot)`` pairs.  Working-set behaviour: the arena grows to the
    maximum number of simultaneously live (or deferred) µ-ops and is reused from then
    on, eliminating per-µ-op allocation and collector churn in the fetch/dispatch/squash
    paths.

    Recycling protocol (enforced by the simulator):

    * **squash** — a squashed µ-op is unreachable immediately (its consumers, being
      younger, were squashed with it) and is released right away via :meth:`release`,
      *unless* it still sits on the completion wheel, in which case the completion
      handler releases it when its stale entry pops.
    * **retire** — a retired µ-op may still be read by younger issue-queue entries
      that renamed against it (operand wake-up reads ``complete_cycle`` /
      ``dispatch_cycle``; the LE/VT port model reads ``dest_bank`` at their commit).
      :meth:`retire` therefore parks the record behind a barrier: the largest sequence
      number dispatched so far.  Once the ROB's oldest entry is younger than the
      barrier, every possible reader has itself retired or squashed, and
      :meth:`promote` moves the record to the free list.
    """

    __slots__ = ("_arena", "_free", "_deferred")

    def __init__(self) -> None:
        self._arena: list[InflightOp] = []
        self._free: list[int] = []
        self._deferred: deque[tuple[int, InflightOp]] = deque()

    def __len__(self) -> int:
        return len(self._arena)

    @property
    def allocated(self) -> int:
        """Records ever created (the arena's working-set size)."""
        return len(self._arena)

    @property
    def free_count(self) -> int:
        """Records currently on the free list."""
        return len(self._free)

    @property
    def deferred_count(self) -> int:
        """Retired records still parked behind their barrier."""
        return len(self._deferred)

    # ------------------------------------------------------------------ acquire / release
    def acquire(self, dyn: DynInst) -> InflightOp:
        """A fresh record for ``dyn`` — recycled when possible, arena-grown otherwise."""
        free = self._free
        if free:
            op = self._arena[free.pop()]
            op._init(dyn)
            return op
        op = InflightOp(dyn)
        op.slot = len(self._arena)
        self._arena.append(op)
        return op

    def release(self, op: InflightOp) -> None:
        """Return ``op`` to the free list immediately (squash path)."""
        self._free.append(op.slot)

    def retire(self, op: InflightOp, barrier_seq: int) -> None:
        """Park a retired record until every µ-op dispatched before it has drained.

        ``barrier_seq`` is the highest sequence number dispatched at retirement time;
        barriers are therefore non-decreasing and the deferred queue stays sorted.
        """
        self._deferred.append((barrier_seq, op))

    def promote(self, oldest_inflight_seq: int | None) -> None:
        """Move deferred records whose barrier has drained onto the free list.

        ``oldest_inflight_seq`` is the ROB head's sequence number, or ``None`` when
        the ROB is empty (every deferred record is then promotable).
        """
        deferred = self._deferred
        if not deferred:
            return
        free = self._free
        if oldest_inflight_seq is None:
            while deferred:
                free.append(deferred.popleft()[1].slot)
            return
        while deferred and deferred[0][0] < oldest_inflight_seq:
            free.append(deferred.popleft()[1].slot)
