"""In-flight instruction records used by the timing pipeline.

An :class:`InflightOp` wraps one :class:`~repro.isa.trace.DynInst` while it lives in the
machine, carrying the timing fields that the fetch, rename/dispatch, issue, execute and
commit models fill in.  It is deliberately a plain ``__slots__`` record (not a
dataclass) because hundreds of thousands of them are created per simulation.
"""

from __future__ import annotations

from repro.bpu.unit import BranchOutcome
from repro.isa.trace import DynInst
from repro.vp.base import VPrediction

#: Sentinel used for "not yet known" cycle fields.
UNKNOWN_CYCLE = -1


class InflightOp:
    """One µ-op in flight between fetch and commit."""

    __slots__ = (
        "dyn",
        "seq",
        "pc",
        "uop",
        # Timing.
        "fetch_cycle",
        "dispatch_ready_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        # Dataflow.
        "producers",
        "flags_producer",
        "mem_dependence",
        # Value prediction.
        "prediction",
        "pred_used",
        # EOLE.
        "early_executed",
        "late_executed",
        # Branch prediction.
        "branch_outcome",
        # Bookkeeping.
        "in_issue_queue",
        "issued",
        "executed",
        "squashed",
        "dest_bank",
        "history_snapshot",
        "load_forwarded",
    )

    def __init__(self, dyn: DynInst) -> None:
        self.dyn = dyn
        self.seq = dyn.seq
        self.pc = dyn.pc
        self.uop = dyn.uop
        self.fetch_cycle = UNKNOWN_CYCLE
        self.dispatch_ready_cycle = UNKNOWN_CYCLE
        self.dispatch_cycle = UNKNOWN_CYCLE
        self.issue_cycle = UNKNOWN_CYCLE
        self.complete_cycle = UNKNOWN_CYCLE
        self.commit_cycle = UNKNOWN_CYCLE
        self.producers: tuple[InflightOp | None, ...] = ()
        self.flags_producer: InflightOp | None = None
        self.mem_dependence: InflightOp | None = None
        self.prediction: VPrediction | None = None
        self.pred_used = False
        self.early_executed = False
        self.late_executed = False
        self.branch_outcome: BranchOutcome | None = None
        self.in_issue_queue = False
        self.issued = False
        self.executed = False
        self.squashed = False
        self.dest_bank = 0
        self.history_snapshot = 0
        self.load_forwarded = False

    # ------------------------------------------------------------------ dataflow helpers
    def result_available_cycle(self) -> int:
        """Cycle from which dependents may consume this µ-op's register result.

        Predicted (used) and early-executed results are written to the PRF at dispatch,
        so they are available from the dispatch cycle; everything else becomes available
        when execution completes.  Returns :data:`UNKNOWN_CYCLE` if not yet known.
        """
        if self.pred_used or self.early_executed:
            return self.dispatch_cycle
        return self.complete_cycle

    def bypasses_ooo_engine(self) -> bool:
        """True if this µ-op never enters the out-of-order engine (EOLE's offload)."""
        return self.early_executed or self.late_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InflightOp(seq={self.seq}, pc={self.pc}, op={self.uop.opcode.value}, "
            f"dispatch={self.dispatch_cycle}, issue={self.issue_cycle}, "
            f"complete={self.complete_cycle}, ee={self.early_executed}, le={self.late_executed})"
        )
