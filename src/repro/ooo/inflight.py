"""In-flight instruction records used by the timing pipeline.

An :class:`InflightOp` wraps one :class:`~repro.isa.trace.DynInst` while it lives in the
machine, carrying the timing fields that the fetch, rename/dispatch, issue, execute and
commit models fill in.  It is deliberately a plain ``__slots__`` record (not a
dataclass) because hundreds of thousands of them are created per simulation.

:class:`InflightOpPool` removes even that churn: records live in an append-only arena
(an array of records addressed by ``slot`` index) and recycle through an integer
free-list column, so a steady-state simulation allocates a bounded working set of
records once and then reuses them.  Recycling is only safe once nothing can read a
record any more — the pipeline enforces that with a retirement barrier (see
:meth:`InflightOpPool.retire`), because younger issue-queue entries keep reading their
producers' timing fields until they issue.
"""

from __future__ import annotations

import os
from array import array
from collections import deque

from repro.bpu.unit import BranchOutcome
from repro.isa.trace import DynInst
from repro.vp.base import VPrediction

#: Sentinel used for "not yet known" cycle fields.
UNKNOWN_CYCLE = -1

#: Opt-in switch for the structure-of-arrays backend: ``REPRO_SOA=1`` selects the
#: columnar pool + SoA stage loops, anything else keeps the object-record pool
#: (the bit-identical production default).  The switchable-backend discipline
#: mirrors ``REPRO_EVENT_DRIVEN`` / ``REPRO_WAKEUP_LISTS``; unlike those, the
#: *reference* stays the default because per-element column access measures
#: slower than ``__slots__`` attribute access on CPython (see
#: docs/performance.md — the columns exist for the vectorised-kernel seam, not
#: for scalar-loop wins).
SOA_ENV_VAR = "REPRO_SOA"

#: Opt-in numpy batch kernels over the SoA columns (default **off**); see
#: :mod:`repro.ooo.soa_batch`.  Ignored (gracefully) when numpy is unavailable
#: or the SoA backend itself is off.
SOA_BATCH_ENV_VAR = "REPRO_SOA_BATCH"


def soa_enabled() -> bool:
    """True when ``REPRO_SOA=1`` opts into the columnar (SoA) backend."""
    return os.environ.get(SOA_ENV_VAR, "0") == "1"


def soa_batch_enabled() -> bool:
    """True when ``REPRO_SOA_BATCH=1`` opts into the numpy batch kernels."""
    return os.environ.get(SOA_BATCH_ENV_VAR, "0") == "1"


# Status-flag bit layout of the SoA ``c_flags`` column (one small int per
# slot); the second column ``c_flags2`` holds the two flags whose reset discipline
# differs (``mem_blocked`` is overwritten-before-read, ``in_completion_wheel``
# is invariantly clear for free-list records), so recycling a record resets all
# eight primary flags with a single ``c_flags[slot] = 0`` store.
F_PRED_USED = 1
F_EARLY_EXECUTED = 2
F_LATE_EXECUTED = 4
F_IN_ISSUE_QUEUE = 8
F_ISSUED = 16
F_EXECUTED = 32
F_SQUASHED = 64
F_LOAD_FORWARDED = 128
F2_MEM_BLOCKED = 1
F2_IN_COMPLETION_WHEEL = 2


class InflightOp:
    """One µ-op in flight between fetch and commit."""

    __slots__ = (
        "dyn",
        "seq",
        "pc",
        "uop",
        # Timing.
        "fetch_cycle",
        "dispatch_ready_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        # Wake-up shortcut: the cycle from which dependents may consume this µ-op's
        # result (= result_available_cycle(), maintained eagerly at dispatch/issue so
        # the issue scan reads one field per producer).
        "avail_cycle",
        # Issue-scan skip cache: the earliest cycle a known-unavailable producer
        # becomes readable; scans before it skip this entry with one compare.
        "wait_until",
        # Number of issue-queue entries renamed against this µ-op that are still
        # waiting to issue — a completion only needs to re-arm the issue scan when
        # the completing producer actually has waiters.
        "iq_waiters",
        # Dataflow.
        "producers",
        "mem_dependence",
        # Value prediction.
        "prediction",
        "pred_used",
        # EOLE.
        "early_executed",
        "late_executed",
        # Branch prediction.
        "branch_outcome",
        # Bookkeeping.
        "in_issue_queue",
        "issued",
        "executed",
        "squashed",
        "dest_bank",
        "history_snapshot",
        "load_forwarded",
        # Dependency-driven wake-up (see ooo.issue_queue.WakeupIssueQueue).
        # ``wake_gen`` is bumped on every (re)initialisation so that stale
        # registrations in a producer's consumer list are recognisable after the
        # record has been recycled; ``unknown_producers`` counts producers whose
        # availability cycle is not yet known; ``mem_blocked`` is the store-set
        # gate; the two lists hold ``(consumer, wake_gen)`` registrations.
        "wake_gen",
        "unknown_producers",
        "mem_blocked",
        "wake_consumers",
        "mem_waiters",
        # Pooling: arena index (-1 when unpooled) and completion-wheel membership.
        "slot",
        "in_completion_wheel",
    )

    def __init__(self, dyn: DynInst) -> None:
        self.slot = -1
        self.wake_gen = 0
        # Fields the fetch stage overwrites before anything reads them — reset here
        # for directly-constructed records, skipped by the pool's recycle path (the
        # only acquire site is fetch, which assigns all of them immediately).
        self.fetch_cycle = UNKNOWN_CYCLE
        self.dispatch_ready_cycle = UNKNOWN_CYCLE
        self.history_snapshot = 0
        # Fields only ever read after a later stage wrote them (or by debugging /
        # tests), plus the completion-wheel flag, which is invariantly False for any
        # record on the free list (it is cleared when the stale entry pops, before
        # the release).
        self.issue_cycle = UNKNOWN_CYCLE
        self.commit_cycle = UNKNOWN_CYCLE
        self.in_completion_wheel = False
        # One-time defaults for the fields ``_init`` deliberately does not reset
        # (a recycled record carries its previous incarnation's values there; see
        # the invariant note at the end of ``_init``).
        self.dispatch_cycle = UNKNOWN_CYCLE
        self.complete_cycle = UNKNOWN_CYCLE
        self.wait_until = 0
        self.unknown_producers = 0
        self.mem_blocked = False
        self.producers: tuple[InflightOp | None, ...] = ()
        self.mem_dependence: InflightOp | None = None
        self.branch_outcome: BranchOutcome | None = None
        self._init(dyn)

    def _init(self, dyn: DynInst) -> None:
        """(Re)initialise the per-µ-op fields shared by ``__init__`` and the pool.

        A recycled record must be indistinguishable from a freshly constructed one
        on every path that can read it — the bit-identical determinism suite
        compares pooled and unpooled simulations.  Fields listed in ``__init__``
        are exempt only because fetch overwrites them before any read; a second
        group of fields is exempt because a *later* stage overwrites them before
        any read (see the end of this method).
        """
        self.dyn = dyn
        self.seq = dyn.seq
        self.pc = dyn.pc
        self.uop = dyn.uop
        # A recycled record must never satisfy a wake-up registered against its
        # previous incarnation: the generation token invalidates them all at once.
        self.wake_gen += 1
        self.wake_consumers = None
        self.mem_waiters = None
        self.avail_cycle = UNKNOWN_CYCLE
        self.iq_waiters = 0
        # Fetch only assigns predictions to VP-eligible µ-ops: clear here so a
        # recycled record never pins (or leaks) another µ-op's prediction.
        self.prediction: VPrediction | None = None
        self.pred_used = False
        self.early_executed = False
        self.late_executed = False
        self.in_issue_queue = False
        self.issued = False
        self.executed = False
        self.squashed = False
        self.dest_bank = 0
        self.load_forwarded = False
        # Deliberately NOT reset (overwritten before any read, so a stale value
        # from the previous incarnation is unobservable):
        #
        # * ``dispatch_cycle``/``producers`` — assigned by rename/dispatch; only
        #   read for dispatched µ-ops (issue-queue walks, EE planning, LE/VT port
        #   model, squash PRF release, all post-dispatch);
        # * ``complete_cycle`` — every read is gated on ``executed`` (reset
        #   above), which is only set together with or after the assignment;
        # * ``mem_dependence`` — assigned at dispatch for every load; reads are
        #   guarded by ``uop.is_load``;
        # * ``branch_outcome`` — assigned at fetch for every branch; reads are
        #   guarded by ``uop.is_branch``/``is_conditional_branch``;
        # * ``wait_until``/``unknown_producers``/``mem_blocked`` — assigned by
        #   the (reference / wake-up) issue-queue insert before any read.

    # ------------------------------------------------------------------ dataflow helpers
    def result_available_cycle(self) -> int:
        """Cycle from which dependents may consume this µ-op's register result.

        Predicted (used) and early-executed results are written to the PRF at dispatch,
        so they are available from the dispatch cycle; everything else becomes available
        when execution completes.  Returns :data:`UNKNOWN_CYCLE` if not yet known.
        """
        if self.pred_used or self.early_executed:
            return self.dispatch_cycle
        return self.complete_cycle

    def bypasses_ooo_engine(self) -> bool:
        """True if this µ-op never enters the out-of-order engine (EOLE's offload)."""
        return self.early_executed or self.late_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InflightOp(seq={self.seq}, pc={self.pc}, op={self.uop.opcode.value}, "
            f"dispatch={self.dispatch_cycle}, issue={self.issue_cycle}, "
            f"complete={self.complete_cycle}, ee={self.early_executed}, le={self.late_executed})"
        )


class InflightOpPool:
    """Free-list pool of :class:`InflightOp` records over an array-of-records arena.

    Storage is columnar in the pool's own bookkeeping: ``_arena`` is an append-only
    array of records addressed by each record's ``slot`` index, ``_free`` is an integer
    column of recyclable slots, and ``_deferred`` is the retirement queue of
    ``(barrier_seq, slot)`` pairs.  Working-set behaviour: the arena grows to the
    maximum number of simultaneously live (or deferred) µ-ops and is reused from then
    on, eliminating per-µ-op allocation and collector churn in the fetch/dispatch/squash
    paths.

    Recycling protocol (enforced by the simulator):

    * **squash** — a squashed µ-op is unreachable immediately (its consumers, being
      younger, were squashed with it) and is released right away via :meth:`release`,
      *unless* it still sits on the completion wheel, in which case the completion
      handler releases it when its stale entry pops.
    * **retire** — a retired µ-op may still be read by younger issue-queue entries
      that renamed against it (operand wake-up reads ``complete_cycle`` /
      ``dispatch_cycle``; the LE/VT port model reads ``dest_bank`` at their commit).
      :meth:`retire` therefore parks the record behind a barrier: the largest sequence
      number dispatched so far.  Once the ROB's oldest entry is younger than the
      barrier, every possible reader has itself retired or squashed, and
      :meth:`promote` moves the record to the free list.
    """

    __slots__ = ("_arena", "_free", "_deferred")

    def __init__(self) -> None:
        self._arena: list[InflightOp] = []
        self._free: list[int] = []
        self._deferred: deque[tuple[int, InflightOp]] = deque()

    def __len__(self) -> int:
        return len(self._arena)

    @property
    def allocated(self) -> int:
        """Records ever created (the arena's working-set size)."""
        return len(self._arena)

    @property
    def free_count(self) -> int:
        """Records currently on the free list."""
        return len(self._free)

    @property
    def deferred_count(self) -> int:
        """Retired records still parked behind their barrier."""
        return len(self._deferred)

    # ------------------------------------------------------------------ acquire / release
    def acquire(self, dyn: DynInst) -> InflightOp:
        """A fresh record for ``dyn`` — recycled when possible, arena-grown otherwise."""
        free = self._free
        if free:
            op = self._arena[free.pop()]
            op._init(dyn)
            return op
        op = InflightOp(dyn)
        op.slot = len(self._arena)
        self._arena.append(op)
        return op

    def release(self, op: InflightOp) -> None:
        """Return ``op`` to the free list immediately (squash path)."""
        self._free.append(op.slot)

    def retire(self, op: InflightOp, barrier_seq: int) -> None:
        """Park a retired record until every µ-op dispatched before it has drained.

        ``barrier_seq`` is the highest sequence number dispatched at retirement time;
        barriers are therefore non-decreasing and the deferred queue stays sorted.
        """
        self._deferred.append((barrier_seq, op))

    def promote(self, oldest_inflight_seq: int | None) -> None:
        """Move deferred records whose barrier has drained onto the free list.

        ``oldest_inflight_seq`` is the ROB head's sequence number, or ``None`` when
        the ROB is empty (every deferred record is then promotable).
        """
        deferred = self._deferred
        if not deferred:
            return
        free = self._free
        if oldest_inflight_seq is None:
            while deferred:
                free.append(deferred.popleft()[1].slot)
            return
        while deferred and deferred[0][0] < oldest_inflight_seq:
            free.append(deferred.popleft()[1].slot)


# --------------------------------------------------------------------- SoA backend
class ColumnarInflightOp(InflightOp):
    """Thin slot-view over :class:`ColumnarInflightOpPool` columns.

    Timing cycles, counters and status flags live in the pool's typed arrays,
    indexed by this record's ``slot``; the class-level properties installed below
    shadow the inherited ``__slots__`` descriptors so every cold-path read/write
    (squash recovery, obs hooks, tests, the reference stage loops) transparently
    hits the columns.  Hot loops in the simulator bypass the properties and read
    the columns directly.  Reference fields whose values are Python objects
    (``dyn``/``uop``/``producers``/``prediction``/…) stay real slots.
    """

    __slots__ = ("pool",)

    def __init__(self, dyn: DynInst, pool: "ColumnarInflightOpPool", slot: int) -> None:
        # Column defaults were appended by the pool before construction; only the
        # object-valued slots need their one-time defaults here (mirrors
        # ``InflightOp.__init__`` — see its reset-exemption notes).
        self.pool = pool
        self.slot = slot
        self.history_snapshot = 0
        self.producers = ()
        self.mem_dependence = None
        self.branch_outcome = None
        self._init(dyn)

    def _init(self, dyn: DynInst) -> None:
        pool = self.pool
        slot = self.slot
        self.dyn = dyn
        seq = dyn.seq
        pc = dyn.pc
        uop = dyn.uop
        self.seq = seq
        self.pc = pc
        self.uop = uop
        pool.c_seq[slot] = seq
        pool.c_pc[slot] = pc
        pool.c_hot[slot] = uop.hot_mask
        pool.c_wake_gen[slot] += 1
        self.wake_consumers = None
        self.mem_waiters = None
        pool.c_avail[slot] = UNKNOWN_CYCLE
        pool.c_iq_waiters[slot] = 0
        self.prediction = None
        # One store clears pred_used/early/late/in_iq/issued/executed/squashed/
        # load_forwarded at once (c_flags2 keeps the reference's reset exemptions).
        pool.c_flags[slot] = 0
        pool.c_dest_bank[slot] = 0


def _column_property(column: str) -> property:
    source = (
        f"def fget(self):\n"
        f"    return self.pool.{column}[self.slot]\n"
        f"def fset(self, value):\n"
        f"    self.pool.{column}[self.slot] = value\n"
    )
    namespace: dict = {}
    exec(source, namespace)
    return property(namespace["fget"], namespace["fset"])


def _flag_property(column: str, bit: int) -> property:
    source = (
        f"def fget(self):\n"
        f"    return self.pool.{column}[self.slot] & {bit} != 0\n"
        f"def fset(self, value):\n"
        f"    flags = self.pool.{column}\n"
        f"    slot = self.slot\n"
        f"    if value:\n"
        f"        flags[slot] |= {bit}\n"
        f"    else:\n"
        f"        flags[slot] &= {~bit & 0xFF}\n"
    )
    namespace: dict = {}
    exec(source, namespace)
    return property(namespace["fget"], namespace["fset"])


#: field name → integer column (a plain list on the pool).
COLUMN_FIELDS = {
    "fetch_cycle": "c_fetch",
    "dispatch_ready_cycle": "c_disp_ready",
    "dispatch_cycle": "c_dispatch",
    "issue_cycle": "c_issue",
    "complete_cycle": "c_complete",
    "commit_cycle": "c_commit",
    "avail_cycle": "c_avail",
    "wait_until": "c_wait",
    "iq_waiters": "c_iq_waiters",
    "wake_gen": "c_wake_gen",
    "unknown_producers": "c_unknown",
    "dest_bank": "c_dest_bank",
}

#: field name → (byte column, bit) for the status flags.
FLAG_FIELDS = {
    "pred_used": ("c_flags", F_PRED_USED),
    "early_executed": ("c_flags", F_EARLY_EXECUTED),
    "late_executed": ("c_flags", F_LATE_EXECUTED),
    "in_issue_queue": ("c_flags", F_IN_ISSUE_QUEUE),
    "issued": ("c_flags", F_ISSUED),
    "executed": ("c_flags", F_EXECUTED),
    "squashed": ("c_flags", F_SQUASHED),
    "load_forwarded": ("c_flags", F_LOAD_FORWARDED),
    "mem_blocked": ("c_flags2", F2_MEM_BLOCKED),
    "in_completion_wheel": ("c_flags2", F2_IN_COMPLETION_WHEEL),
}

for _field, _column in COLUMN_FIELDS.items():
    setattr(ColumnarInflightOp, _field, _column_property(_column))
for _field, (_column, _bit) in FLAG_FIELDS.items():
    setattr(ColumnarInflightOp, _field, _flag_property(_column, _bit))
del _field, _column, _bit


class ColumnarInflightOpPool(InflightOpPool):
    """:class:`InflightOpPool` with the timing/flag state in parallel typed arrays.

    Same arena/free-list/retirement-barrier protocol as the object-record pool;
    additionally every slot owns one element in each column below, written through
    either the :class:`ColumnarInflightOp` properties (cold paths) or directly by
    the simulator's SoA stage loops (hot paths).  ``c_seq``/``c_pc``/``c_hot``
    mirror the record's ``seq``/``pc``/``uop.hot_mask`` so tracer events, metrics
    and batch kernels can be sourced from columns alone.
    """

    __slots__ = (
        "c_fetch",
        "c_disp_ready",
        "c_dispatch",
        "c_issue",
        "c_complete",
        "c_commit",
        "c_avail",
        "c_wait",
        "c_iq_waiters",
        "c_wake_gen",
        "c_unknown",
        "c_dest_bank",
        "c_hot",
        "c_seq",
        "c_pc",
        "c_flags",
        "c_flags2",
    )

    def __init__(self) -> None:
        super().__init__()
        # Every per-element column is a plain list, not ``array('q')``/
        # ``bytearray``: a CPython list subscript returns the stored object
        # directly (and hits the adaptive BINARY_SUBSCR_LIST_INT
        # specialisation), while the typed containers box a fresh ``int`` on
        # every read and stay unspecialised — measurably slower in the
        # per-element stage loops, which dominate (see docs/performance.md).
        # Only ``c_hot`` stays a C-backed buffer: it is written once per fetch,
        # read rarely, and the numpy drain kernel views it zero-copy via
        # ``frombuffer``.
        self.c_fetch: list[int] = []
        self.c_disp_ready: list[int] = []
        self.c_dispatch: list[int] = []
        self.c_issue: list[int] = []
        self.c_complete: list[int] = []
        self.c_commit: list[int] = []
        self.c_avail: list[int] = []
        self.c_wait: list[int] = []
        self.c_iq_waiters: list[int] = []
        self.c_wake_gen: list[int] = []
        self.c_unknown: list[int] = []
        self.c_dest_bank: list[int] = []
        self.c_hot = array("q")
        self.c_seq: list[int] = []
        self.c_pc: list[int] = []
        self.c_flags: list[int] = []
        self.c_flags2: list[int] = []

    def acquire(self, dyn: DynInst) -> InflightOp:
        """A fresh slot-view record for ``dyn`` (recycled or arena-grown)."""
        free = self._free
        if free:
            op = self._arena[free.pop()]
            op._init(dyn)
            return op
        slot = len(self._arena)
        unknown = UNKNOWN_CYCLE
        self.c_fetch.append(unknown)
        self.c_disp_ready.append(unknown)
        self.c_dispatch.append(unknown)
        self.c_issue.append(unknown)
        self.c_complete.append(unknown)
        self.c_commit.append(unknown)
        self.c_avail.append(unknown)
        self.c_wait.append(0)
        self.c_iq_waiters.append(0)
        self.c_wake_gen.append(0)
        self.c_unknown.append(0)
        self.c_dest_bank.append(0)
        self.c_hot.append(0)
        self.c_seq.append(0)
        self.c_pc.append(0)
        self.c_flags.append(0)
        self.c_flags2.append(0)
        op = ColumnarInflightOp(dyn, self, slot)
        self._arena.append(op)
        return op
