"""Load/Store Queues with store-to-load forwarding and ordering-violation detection.

The baseline machine has 48-entry load and store queues (Table 1).  Independent memory
instructions, as predicted by the Store Sets predictor, are allowed to issue
out-of-order; the LSQ is responsible for

* forwarding data from an older, already-executed store to a younger load to the same
  address, and
* detecting memory-order violations: a store that executes and finds a younger load to
  the same address that already executed (without forwarding from it) triggers a squash.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError
from repro.ooo.inflight import InflightOp


class LoadStoreQueue:
    """Combined model of the load queue and store queue.

    Both queues are deques in dispatch (= commit) order: the common commit-time
    removal pops the oldest entry in O(1) instead of shifting the whole queue.
    """

    def __init__(self, lq_capacity: int = 48, sq_capacity: int = 48) -> None:
        if lq_capacity <= 0 or sq_capacity <= 0:
            raise ConfigurationError("LQ/SQ capacities must be positive")
        self.lq_capacity = lq_capacity
        self.sq_capacity = sq_capacity
        self._loads: deque[InflightOp] = deque()
        self._stores: deque[InflightOp] = deque()
        self.forwarded_loads = 0
        self.violations = 0
        self.peak_lq_occupancy = 0
        self.peak_sq_occupancy = 0

    # ------------------------------------------------------------------ capacity
    @property
    def load_occupancy(self) -> int:
        """Number of in-flight loads."""
        return len(self._loads)

    @property
    def store_occupancy(self) -> int:
        """Number of in-flight stores."""
        return len(self._stores)

    def has_space(self, op: InflightOp) -> bool:
        """True if the memory µ-op ``op`` fits in its queue."""
        if op.uop.is_load:
            return len(self._loads) < self.lq_capacity
        if op.uop.is_store:
            return len(self._stores) < self.sq_capacity
        return True

    # ------------------------------------------------------------------ mutation
    def insert(self, op: InflightOp) -> None:
        """Dispatch a memory µ-op into its queue."""
        if op.uop.is_load:
            self._loads.append(op)
            self.peak_lq_occupancy = max(self.peak_lq_occupancy, len(self._loads))
        elif op.uop.is_store:
            self._stores.append(op)
            self.peak_sq_occupancy = max(self.peak_sq_occupancy, len(self._stores))

    def remove(self, op: InflightOp) -> None:
        """Remove a memory µ-op at commit time.

        Commit is in order, so ``op`` is the queue head in the common case; the
        linear fallback only runs for out-of-band removals (dispatch rollback).
        """
        if op.uop.is_load:
            queue = self._loads
        elif op.uop.is_store:
            queue = self._stores
        else:
            return
        if queue and queue[0] is op:
            queue.popleft()
            return
        try:
            queue.remove(op)
        except ValueError:
            pass

    def remove_squashed(self) -> None:
        """Drop squashed entries after a pipeline flush."""
        self._loads = deque(op for op in self._loads if not op.squashed)
        self._stores = deque(op for op in self._stores if not op.squashed)

    # ------------------------------------------------------------------ forwarding & ordering
    def forwarding_store(self, load: InflightOp) -> InflightOp | None:
        """Youngest older store to the same address that has already executed.

        Returns ``None`` when no forwarding is possible (the load must access the
        cache).  Addresses come from the architectural trace, so the match is exact.
        """
        best: InflightOp | None = None
        for store in self._stores:
            if store.seq >= load.seq:
                break
            if store.issued and store.dyn.addr == load.dyn.addr:
                best = store
        return best

    def oldest_conflicting_unissued_store(self, load: InflightOp) -> InflightOp | None:
        """Oldest older store whose address will conflict and has not executed yet.

        Used only for statistics/diagnostics; the speculative scheduling decision is
        taken by the Store Sets predictor, not by an oracle.
        """
        for store in self._stores:
            if store.seq >= load.seq:
                break
            if not store.issued and store.dyn.addr == load.dyn.addr:
                return store
        return None

    def detect_violation(self, store: InflightOp) -> InflightOp | None:
        """Oldest younger load to the same address that executed before ``store``.

        Called when a store executes (its address becomes architecturally known).  A
        match means the load speculatively read stale data: the pipeline must squash
        from that load and the Store Sets predictor must learn the dependence.
        """
        violating: InflightOp | None = None
        for load in self._loads:
            if load.seq <= store.seq:
                continue
            if not load.issued:
                continue
            if load.dyn.addr != store.dyn.addr:
                continue
            if load.load_forwarded:
                continue
            if violating is None or load.seq < violating.seq:
                violating = load
        if violating is not None:
            self.violations += 1
        return violating
