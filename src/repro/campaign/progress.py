"""Wall-clock progress and ETA reporting for campaign runs.

The reporter distinguishes *simulated* cells from *reused* ones (in-memory cache or
persistent store hits): the ETA extrapolates from the mean wall-clock of simulated
cells only, so a resumed campaign that fast-forwards through stored results does not
report an absurdly optimistic finish time for the remaining real work.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.campaign.spec import CampaignCell


def format_duration(seconds: float) -> str:
    """Compact human duration: ``3.2s``, ``4m12s``, ``1h03m``."""
    if seconds < 0:
        seconds = 0.0
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Prints one line per finished cell plus a final summary."""

    def __init__(
        self,
        total: int,
        enabled: bool = True,
        stream: TextIO | None = None,
        label: str = "campaign",
        workers: int = 1,
    ) -> None:
        self.total = total
        self.enabled = enabled
        self.workers = max(1, workers)
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.done = 0
        self.simulated = 0
        self.reused = 0
        self._started = time.monotonic()
        self._simulated_seconds = 0.0

    # ------------------------------------------------------------------ events
    def cell_done(self, cell: CampaignCell, seconds: float, reused: bool) -> None:
        """Record one finished cell (``reused`` = served from cache/store)."""
        self.done += 1
        if reused:
            self.reused += 1
        else:
            self.simulated += 1
            self._simulated_seconds += seconds
        if not self.enabled:
            return
        source = "reused" if reused else f"simulated in {format_duration(seconds)}"
        percent = 100.0 * self.done / self.total if self.total else 100.0
        self._emit(
            f"{self.done}/{self.total} ({percent:3.0f}%) {cell.describe()} {source}"
            f" — elapsed {format_duration(self.elapsed)}, ETA {format_duration(self.eta)}"
        )

    def finish(self) -> None:
        """Print the closing summary line."""
        if not self.enabled:
            return
        self._emit(
            f"done: {self.simulated} simulated, {self.reused} reused, "
            f"{self.total} cells in {format_duration(self.elapsed)}"
        )

    # ------------------------------------------------------------------ derived
    @property
    def elapsed(self) -> float:
        """Seconds since the reporter was created."""
        return time.monotonic() - self._started

    @property
    def eta(self) -> float:
        """Projected seconds to completion from the mean simulated-cell cost.

        The mean is divided across the worker pool (capped at the remaining cell
        count) — per-cell durations accumulate concurrently under sharding, so a
        serial projection would overestimate by roughly the worker count.
        """
        remaining = self.total - self.done
        if remaining <= 0 or self.simulated == 0:
            return 0.0
        mean = self._simulated_seconds / self.simulated
        return remaining * mean / min(self.workers, remaining)

    def _emit(self, message: str) -> None:
        print(f"[{self.label}] {message}", file=self.stream, flush=True)
