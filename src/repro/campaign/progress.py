"""Wall-clock progress and ETA reporting for campaign runs.

The reporter distinguishes *simulated* cells from *reused* ones (in-memory cache or
persistent store hits): the ETA extrapolates from the mean wall-clock of simulated
cells only, so a resumed campaign that fast-forwards through stored results does not
report an absurdly optimistic finish time for the remaining real work.

Besides the human progress lines (``enabled=True``), the reporter can append a
*structured heartbeat log* — one JSON object per event (``cell_started``,
``cell_done``, ``finish``) — to the path given by ``heartbeat_path`` or the
``REPRO_HEARTBEAT_LOG`` environment variable.  The heartbeat is written regardless
of ``enabled`` and swallows I/O errors: telemetry must never take a campaign down.
Swallowed write failures are counted (``heartbeat_errors``) and surfaced in both
the human finish line and the structured ``finish`` record, so lost telemetry is
at least visible after the fact.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import TextIO

from repro.campaign.spec import CampaignCell

#: Environment variable: path of the structured JSONL heartbeat log (optional).
HEARTBEAT_ENV_VAR = "REPRO_HEARTBEAT_LOG"


def format_duration(seconds: float) -> str:
    """Compact human duration: ``3.2s``, ``4m12s``, ``1h03m``."""
    if seconds < 0:
        seconds = 0.0
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Prints one line per finished cell plus a final summary."""

    def __init__(
        self,
        total: int,
        enabled: bool = True,
        stream: TextIO | None = None,
        label: str = "campaign",
        workers: int = 1,
        heartbeat_path: str | None = None,
    ) -> None:
        self.total = total
        self.enabled = enabled
        self.workers = max(1, workers)
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.done = 0
        self.simulated = 0
        self.reused = 0
        self.failed = 0
        self._started = time.monotonic()
        self._simulated_seconds = 0.0
        #: Swallowed heartbeat-log write failures (full disk, bad path, …).
        #: Surfaced in the finish summary so silently-lost telemetry is visible.
        self.heartbeat_errors = 0
        if heartbeat_path is None:
            heartbeat_path = os.environ.get(HEARTBEAT_ENV_VAR) or None
        self._heartbeat_path = Path(heartbeat_path) if heartbeat_path else None

    # ------------------------------------------------------------------ events
    def cell_started(self, cell: CampaignCell) -> None:
        """Announce one cell entering simulation (serial path / single-cell runs)."""
        self._heartbeat("cell_started", cell=cell.describe())
        if not self.enabled:
            return
        percent = 100.0 * self.done / self.total if self.total else 100.0
        eta = format_duration(self.eta) if self.simulated else "unknown"
        self._emit(
            f"{self.done}/{self.total} ({percent:3.0f}%) {cell.describe()} running"
            f" — elapsed {format_duration(self.elapsed)}, ETA {eta}"
        )

    def cell_done(self, cell: CampaignCell, seconds: float, reused: bool) -> None:
        """Record one finished cell (``reused`` = served from cache/store)."""
        self.done += 1
        if reused:
            self.reused += 1
        else:
            self.simulated += 1
            self._simulated_seconds += seconds
        self._heartbeat("cell_done", cell=cell.describe(), seconds=seconds, reused=reused)
        if not self.enabled:
            return
        source = "reused" if reused else f"simulated in {format_duration(seconds)}"
        percent = 100.0 * self.done / self.total if self.total else 100.0
        self._emit(
            f"{self.done}/{self.total} ({percent:3.0f}%) {cell.describe()} {source}"
            f" — elapsed {format_duration(self.elapsed)}, ETA {format_duration(self.eta)}"
        )

    def cell_failed(self, cell: CampaignCell, error: dict | None = None) -> None:
        """Record one cell whose simulation raised (the campaign continues)."""
        self.done += 1
        self.failed += 1
        detail = {}
        if error is not None:
            detail = {"error_type": error.get("type"), "error_message": error.get("message")}
        self._heartbeat("cell_failed", cell=cell.describe(), **detail)
        if not self.enabled:
            return
        percent = 100.0 * self.done / self.total if self.total else 100.0
        reason = f": {error.get('type')}: {error.get('message')}" if error else ""
        self._emit(
            f"{self.done}/{self.total} ({percent:3.0f}%) {cell.describe()} FAILED{reason}"
            f" — elapsed {format_duration(self.elapsed)}"
        )

    def finish(self) -> None:
        """Print the closing summary line."""
        # The finish record carries the swallowed-error count: a reader tailing
        # the log can tell how many events a sick disk silently dropped (the
        # finish write itself may add one more, uncountable by definition).
        self._heartbeat("finish", utilization=self.utilization,
                        heartbeat_write_errors=self.heartbeat_errors)
        if not self.enabled:
            return
        workers_note = (
            f" ({self.workers} workers, {self.utilization:.0%} utilisation)"
            if self.workers > 1
            else ""
        )
        failed_note = f", {self.failed} FAILED" if self.failed else ""
        heartbeat_note = (
            f", {self.heartbeat_errors} heartbeat-log writes failed"
            if self.heartbeat_errors
            else ""
        )
        self._emit(
            f"done: {self.simulated} simulated, {self.reused} reused{failed_note}, "
            f"{self.total} cells in {format_duration(self.elapsed)}"
            + workers_note
            + heartbeat_note
        )

    # ------------------------------------------------------------------ derived
    @property
    def elapsed(self) -> float:
        """Seconds since the reporter was created."""
        return time.monotonic() - self._started

    @property
    def eta(self) -> float:
        """Projected seconds to completion from the mean simulated-cell cost.

        The mean is divided across the worker pool (capped at the remaining cell
        count) — per-cell durations accumulate concurrently under sharding, so a
        serial projection would overestimate by roughly the worker count.
        """
        remaining = self.total - self.done
        if remaining <= 0 or self.simulated == 0:
            return 0.0
        mean = self._simulated_seconds / self.simulated
        return remaining * mean / min(self.workers, remaining)

    @property
    def utilization(self) -> float:
        """Fraction of the worker pool's wall-clock spent simulating (≤ 1.0).

        Per-cell durations accumulate concurrently under sharding, so the pool's
        available time is ``elapsed × workers``; reused cells contribute nothing.
        """
        available = self.elapsed * self.workers
        if available <= 0:
            return 0.0
        return min(1.0, self._simulated_seconds / available)

    def _emit(self, message: str) -> None:
        print(f"[{self.label}] {message}", file=self.stream, flush=True)

    def _heartbeat(self, event: str, **extra) -> None:
        """Append one structured event row to the heartbeat log (best effort)."""
        path = self._heartbeat_path
        if path is None:
            return
        row = {
            "unix_time": time.time(),
            "event": event,
            "label": self.label,
            "done": self.done,
            "total": self.total,
            "simulated": self.simulated,
            "reused": self.reused,
            "failed": self.failed,
            "elapsed_seconds": self.elapsed,
            "eta_seconds": self.eta,
            "workers": self.workers,
        }
        row.update(extra)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        except OSError:
            # Telemetry must never take a campaign down (full disk, bad path, …)
            # — but a swallowed write is still a lost event, so count it.
            self.heartbeat_errors += 1
