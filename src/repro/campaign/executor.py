"""The campaign executor: shard a cell grid across worker processes, checkpointing.

The execution order per cell is cache → store → simulate:

1. an in-memory cache hit (same process, e.g. a previous figure sharing the baseline)
   is free;
2. a persistent-store hit (a previous campaign/process/session) costs one dict →
   :class:`SimulationResult` conversion;
3. everything else is simulated — inline when ``workers <= 1``, otherwise sharded
   across a :class:`~concurrent.futures.ProcessPoolExecutor` of at most
   ``os.cpu_count()`` workers (env ``REPRO_CAMPAIGN_WORKERS`` overrides), with
   same-workload cells batched onto one worker so its trace cache
   (:mod:`repro.trace`) emulates each workload once and replays it per
   configuration.

Every finished simulation is appended to the store as its batch lands, so an
interrupted campaign is resumable: re-running it skips straight to the missing cells
(step 2).
Determinism is unaffected by sharding because each cell is self-contained — the
simulator derives all randomness from the configuration's ``predictor_seed`` (or the
campaign-derived per-cell seed, see :class:`~repro.campaign.spec.Campaign`), never
from scheduling order.
"""

from __future__ import annotations

import os
import socket
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import Campaign, CampaignCell
from repro.campaign.store import ResultStore, default_store
from repro.obs.telemetry import TraceCacheSnapshot, cell_telemetry
from repro.pipeline.multi_replay import (
    MultiSimulator,
    PlaneSpec,
    multi_replay_enabled,
    multi_replay_width,
)
from repro.pipeline.simulator import Simulator
from repro.pipeline.stats import SimulationResult
from repro.trace.cache import shared_trace_cache, trace_cache_enabled
from repro.workloads.suite import Workload, workload

#: Environment variable overriding the worker-process count.
WORKERS_ENV_VAR = "REPRO_CAMPAIGN_WORKERS"


def failure_payload(error: BaseException, worker: str | None = None, attempts: int = 1) -> dict:
    """The structured error dict stored with a failed cell (see ``put_failure``).

    Captures enough to triage without re-running: exception type/message, a
    trimmed traceback, and where/how often the cell was attempted.
    """
    return {
        "type": type(error).__name__,
        "message": str(error),
        "traceback": "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )[-4000:],
        "worker": worker if worker is not None else f"{socket.gethostname()}:{os.getpid()}",
        "attempts": attempts,
        "unix_time": time.time(),
    }


def default_workers() -> int:
    """Worker processes for campaign runs (env ``REPRO_CAMPAIGN_WORKERS``, else all cores)."""
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def simulate_cell(
    cell: CampaignCell, wl: Workload | None = None, trace=None
) -> SimulationResult:
    """Simulate one cell (the single primitive shared by every execution path).

    ``wl`` short-circuits the suite lookup when the caller already holds the workload
    object (the serial :func:`repro.analysis.runner.run_workload` path); worker
    processes pass only the cell and re-derive the workload from its name.

    The workload's committed µ-op stream comes from the shared trace cache
    (:mod:`repro.trace`): the architectural emulator runs once per workload and every
    configuration replays the captured trace.  ``REPRO_TRACE_CACHE=0`` restores the
    inline-emulation path (bit-identical, just slower).
    """
    wl = wl if wl is not None else workload(cell.workload_name)
    if trace is None and trace_cache_enabled():
        trace = shared_trace_cache.trace_for(wl, cell.max_uops, cell.config)
    arch_state = wl.make_state() if trace is None else None
    simulator = Simulator(
        cell.config,
        wl.program,
        max_uops=cell.max_uops,
        warmup_uops=cell.warmup_uops,
        arch_state=arch_state,
        workload_name=wl.name,
        trace=trace,
    )
    return simulator.run()


def simulate_cells(
    cells: list[CampaignCell], wl: Workload | None = None, trace=None
) -> list[SimulationResult]:
    """Simulate same-workload cells in one multi-replay pass (cell order kept).

    The multi-config twin of :func:`simulate_cell`: one shared trace (captured
    long enough for the deepest fetch-ahead window in the batch), one
    :class:`MultiSimulator` pass over it.  Results are byte-identical to running
    :func:`simulate_cell` per cell — callers gate on
    :func:`repro.pipeline.multi_replay.multi_replay_enabled` for the opt-in.
    """
    return [result for _, result, _, _ in _simulate_cell_group(cells, wl, trace)]


def _simulate_cell_group(
    cells: list[CampaignCell], wl: Workload | None = None, trace=None
) -> list[tuple[CampaignCell, SimulationResult, float, dict]]:
    """One multi-replay pass plus per-cell telemetry attribution.

    Telemetry rows keep the serial schema exactly (``repro-campaign report
    --metrics`` is unchanged): each cell's ``wall_seconds`` is its plane's own
    simulation time plus an even share of the pass overhead (capture +
    scheduling), and the one shared trace acquisition is attributed to the first
    cell's trace-cache delta — the serial path charges the capture to whichever
    cell triggers it, and in a group that is the first one.
    """
    if not cells:
        return []
    wl = wl if wl is not None else workload(cells[0].workload_name)
    first_snapshot = TraceCacheSnapshot()
    started = time.monotonic()
    if trace is None and trace_cache_enabled():
        trace = shared_trace_cache.trace_for_many(
            wl, [(cell.max_uops, cell.config) for cell in cells]
        )
    rest_snapshot = TraceCacheSnapshot()  # after the one shared acquisition
    multi = MultiSimulator(
        [PlaneSpec(cell.config, cell.max_uops, cell.warmup_uops) for cell in cells],
        wl.program,
        workload_name=wl.name,
        trace=trace,
        make_state=wl.make_state if trace is None else None,
    )
    results = multi.run()
    shared_overhead = max(
        0.0, (time.monotonic() - started) - sum(multi.plane_seconds)
    ) / len(cells)
    out = []
    for index, (cell, result) in enumerate(zip(cells, results)):
        seconds = multi.plane_seconds[index] + shared_overhead
        snapshot = first_snapshot if index == 0 else rest_snapshot
        out.append((cell, result, seconds, cell_telemetry(result, seconds, snapshot)))
    return out


def _replay_groups(pending: list[CampaignCell]) -> list[list[CampaignCell]]:
    """Same-workload cell groups, chunked by ``REPRO_MULTI_REPLAY_WIDTH``.

    Grouping is by workload name only — :meth:`TraceCache.trace_for_many` sizes
    the one shared capture for the deepest (max_uops, config) plane, so mixed
    run lengths share a pass too.
    """
    groups: dict[str, list[CampaignCell]] = {}
    for cell in pending:
        groups.setdefault(cell.workload_name, []).append(cell)
    width = multi_replay_width()
    if not width:
        return list(groups.values())
    return [
        group[start : start + width]
        for group in groups.values()
        for start in range(0, len(group), width)
    ]


def _simulate_one_entry(cell: CampaignCell) -> dict:
    """Simulate one cell into a shippable success/error entry (never raises)."""
    snapshot = TraceCacheSnapshot()
    started = time.monotonic()
    try:
        result = simulate_cell(cell)
    except Exception as error:  # noqa: BLE001 — one bad cell must not sink the batch
        return {"fingerprint": cell.fingerprint, "error": failure_payload(error)}
    seconds = time.monotonic() - started
    return {
        "fingerprint": cell.fingerprint,
        "result": result.to_dict(),
        "seconds": seconds,
        "telemetry": cell_telemetry(result, seconds, snapshot),
    }


def _pool_worker(cells: list[CampaignCell]) -> list[dict]:
    """Process-pool entry point: simulate a batch of same-workload cells.

    Cells are batched by workload (see :func:`_workload_batches`) so that each worker
    captures the architectural trace once per workload and replays it for every
    configuration in the batch.  Each cell ships back as one entry — either
    ``{"fingerprint", "result", "seconds", "telemetry"}`` or ``{"fingerprint",
    "error"}`` — so a raising cell costs only itself: a failed multi-replay group
    falls back to per-cell simulation and everything else in the batch continues.
    """
    out: list[dict] = []
    if multi_replay_enabled() and len(cells) > 1:
        for group in _replay_groups(cells):
            try:
                for cell, result, seconds, telemetry in _simulate_cell_group(group):
                    out.append(
                        {
                            "fingerprint": cell.fingerprint,
                            "result": result.to_dict(),
                            "seconds": seconds,
                            "telemetry": telemetry,
                        }
                    )
            except Exception:  # noqa: BLE001 — retry the group cell by cell
                out.extend(_simulate_one_entry(cell) for cell in group)
        return out
    for cell in cells:
        out.append(_simulate_one_entry(cell))
    return out


@dataclass
class CampaignOutcome:
    """Everything :func:`run_campaign` learned: results plus provenance counters."""

    campaign: Campaign
    #: (config_name, workload_name) → result, covering every *completed* cell.
    results: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)
    #: (config_name, workload_name) → structured error dict for cells whose
    #: simulation raised (see :func:`failure_payload`); absent from ``results``.
    failed: dict[tuple[str, str], dict] = field(default_factory=dict)
    simulated: int = 0
    from_store: int = 0
    from_cache: int = 0
    elapsed_seconds: float = 0.0

    @property
    def failures(self) -> int:
        """Cells whose simulation raised (recorded in :attr:`failed`)."""
        return len(self.failed)

    def by_config(self) -> dict[str, dict[str, SimulationResult]]:
        """Results regrouped as config name → workload name → result."""
        grid: dict[str, dict[str, SimulationResult]] = {}
        for (config_name, workload_name), result in self.results.items():
            grid.setdefault(config_name, {})[workload_name] = result
        return grid

    def ipcs(self) -> dict[tuple[str, str], float]:
        """Per-cell IPC map (the paper's primary metric)."""
        return {key: result.ipc for key, result in self.results.items()}


def run_campaign(
    campaign: Campaign,
    store: ResultStore | None = None,
    workers: int | None = None,
    cache=None,
    progress: bool = False,
) -> CampaignOutcome:
    """Execute ``campaign``, reusing cached/stored cells and persisting new ones.

    ``cache`` is any object with ``get(key)``/``put(key, result)`` over
    :attr:`CampaignCell.key` tuples (e.g. :class:`repro.analysis.runner.ResultCache`);
    ``store=None`` falls back to the ``REPRO_RESULT_STORE`` default store when set.
    """
    started = time.monotonic()
    cells = campaign.cells()
    if store is None:
        store = default_store()
    workers = workers if workers is not None else default_workers()
    reporter = ProgressReporter(
        total=len(cells), enabled=progress, label=campaign.name, workers=workers
    )
    outcome = CampaignOutcome(campaign=campaign)

    pending: list[CampaignCell] = []
    for cell in cells:
        cached = cache.get(cell.key) if cache is not None else None
        if cached is not None:
            outcome.results[(cell.config.name, cell.workload_name)] = cached
            outcome.from_cache += 1
            reporter.cell_done(cell, 0.0, reused=True)
            continue
        stored = store.get(cell.fingerprint) if store is not None else None
        if stored is not None:
            outcome.results[(cell.config.name, cell.workload_name)] = stored
            outcome.from_store += 1
            if cache is not None:
                cache.put(cell.key, stored)
            reporter.cell_done(cell, 0.0, reused=True)
            continue
        pending.append(cell)

    def complete(
        cell: CampaignCell,
        result: SimulationResult,
        seconds: float,
        telemetry: dict | None = None,
    ) -> None:
        outcome.results[(cell.config.name, cell.workload_name)] = result
        outcome.simulated += 1
        if store is not None:
            store.put(cell, result, telemetry)
        if cache is not None:
            cache.put(cell.key, result)
        reporter.cell_done(cell, seconds, reused=False)

    def fail(cell: CampaignCell, error: dict) -> None:
        outcome.failed[(cell.config.name, cell.workload_name)] = error
        if store is not None:
            store.put_failure(cell, error)
        reporter.cell_failed(cell, error)

    def deliver(cell: CampaignCell, entry: dict) -> None:
        """Route one worker entry (success or error) into the outcome/store."""
        if "error" in entry:
            fail(cell, entry["error"])
        else:
            complete(
                cell,
                SimulationResult.from_dict(entry["result"]),
                entry["seconds"],
                entry["telemetry"],
            )

    if pending:
        if workers <= 1 or len(pending) == 1:
            if multi_replay_enabled() and len(pending) > 1:
                # Same-workload cells collapse into one multi-replay pass each
                # (REPRO_MULTI_REPLAY=1, chunked by REPRO_MULTI_REPLAY_WIDTH);
                # results and telemetry rows land per cell exactly as the
                # serial loop below produces them.  A raising group retries its
                # cells one by one, so one bad cell costs only itself.
                for group in _replay_groups(pending):
                    for cell in group:
                        reporter.cell_started(cell)
                    try:
                        for cell, result, seconds, telemetry in _simulate_cell_group(group):
                            complete(cell, result, seconds, telemetry)
                    except Exception:  # noqa: BLE001 — fall back to per-cell
                        for cell in group:
                            deliver(cell, _simulate_one_entry(cell))
            else:
                for cell in pending:
                    reporter.cell_started(cell)
                    deliver(cell, _simulate_one_entry(cell))
        else:
            _run_sharded(pending, workers, deliver)

    outcome.elapsed_seconds = time.monotonic() - started
    reporter.finish()
    return outcome


def _workload_batches(pending: list, workers: int) -> list[list]:
    """Group cells by workload, splitting batches only to fill idle workers.

    Keeping same-workload cells on one worker lets its trace cache emulate the
    workload once and replay it per configuration; when there are fewer workloads than
    workers the largest batches are halved until the pool is saturated (a split batch
    costs one extra capture, which the parallelism more than repays).
    """
    groups: dict[tuple, list] = {}
    for cell in pending:
        groups.setdefault((cell.workload_name, cell.max_uops), []).append(cell)
    batches = sorted(groups.values(), key=len, reverse=True)
    target = min(workers, len(pending))
    while len(batches) < target:
        batches.sort(key=len, reverse=True)
        largest = batches[0]
        if len(largest) <= 1:
            break
        middle = len(largest) // 2
        batches[0] = largest[:middle]
        batches.append(largest[middle:])
    return batches


def _run_sharded(pending, workers: int, deliver) -> None:
    """Fan ``pending`` cells out over a process pool, checkpointing as batches land.

    Per-cell exceptions never reach this layer (:func:`_pool_worker` converts them
    to error entries); what can still raise here is the *pool itself* breaking — a
    worker SIGKILLed by the OOM killer turns every in-flight future into
    ``BrokenProcessPool``.  Those batches fall back to in-process per-cell
    simulation, so the campaign finishes (slower) instead of losing the grid.
    """
    by_fingerprint = {cell.fingerprint: cell for cell in pending}
    batches = _workload_batches(pending, workers)
    stranded: list[CampaignCell] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(batches))) as pool:
        futures = {pool.submit(_pool_worker, batch): batch for batch in batches}
        remaining = set(futures)
        while remaining:
            finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in finished:
                try:
                    entries = future.result()
                except Exception:  # noqa: BLE001 — pool died; batch result lost
                    stranded.extend(futures[future])
                    continue
                for entry in entries:
                    deliver(by_fingerprint[entry["fingerprint"]], entry)
    for cell in stranded:
        deliver(cell, _simulate_one_entry(cell))


def campaign_status(campaign: Campaign, store: ResultStore | None) -> dict:
    """Done/missing cell accounting for ``status`` reporting (no simulation)."""
    cells = campaign.cells()
    done = [cell for cell in cells if store is not None and cell.fingerprint in store]
    missing = [cell for cell in cells if store is None or cell.fingerprint not in store]
    return {
        "total": len(cells),
        "done": len(done),
        "missing": len(missing),
        "missing_cells": [cell.describe() for cell in missing],
    }
