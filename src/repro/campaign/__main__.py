"""``python -m repro.campaign`` dispatches to the campaign CLI."""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
