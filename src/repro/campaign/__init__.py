"""Parallel simulation campaigns with a persistent result store.

The campaign subsystem turns the (configuration × workload) grids behind every figure
of the paper into first-class, resumable jobs:

* :mod:`repro.campaign.spec` — :class:`Campaign`/:class:`CampaignCell` grid specs with
  SPEC-style named workload sets and content-addressed cell fingerprints;
* :mod:`repro.campaign.store` — :class:`ResultStore`, an append-only JSON-lines store
  with load/merge/invalidate semantics (env default: ``REPRO_RESULT_STORE``);
* :mod:`repro.campaign.executor` — :func:`run_campaign`, sharding cells over worker
  processes (env: ``REPRO_CAMPAIGN_WORKERS``) with per-cell checkpointing and resume;
* :mod:`repro.campaign.coordinator` — :class:`CampaignService`, the distributed
  leased work queue over a shared directory (``repro-campaign serve`` / ``work``);
* :mod:`repro.campaign.progress` — per-cell progress lines with wall-clock ETA;
* :mod:`repro.campaign.cli` — the ``python -m repro.campaign`` command line.

Quickstart::

    from repro.campaign import Campaign, ResultStore, run_campaign

    campaign = Campaign.from_names(["Baseline_6_64", "EOLE_4_64"], "subset",
                                   max_uops=8000, warmup_uops=2000)
    outcome = run_campaign(campaign, store=ResultStore("results.jsonl"), workers=4)
    print(outcome.ipcs())          # every cell, freshly simulated
    outcome = run_campaign(campaign, store=ResultStore("results.jsonl"))
    print(outcome.simulated)       # 0 — everything came from the store
"""

from repro.campaign.coordinator import (
    CampaignService,
    CoordinationError,
    Lease,
    default_worker_id,
    serve,
    work_loop,
)
from repro.campaign.executor import (
    CampaignOutcome,
    campaign_status,
    default_workers,
    failure_payload,
    run_campaign,
    simulate_cell,
    simulate_cells,
)
from repro.campaign.progress import ProgressReporter, format_duration
from repro.campaign.spec import (
    BENCH_SUBSET,
    WORKLOAD_SETS,
    Campaign,
    CampaignCell,
    derive_seed,
    resolve_workload_names,
)
from repro.campaign.store import STORE_ENV_VAR, ResultStore, default_store

__all__ = [
    "BENCH_SUBSET",
    "Campaign",
    "CampaignCell",
    "CampaignOutcome",
    "CampaignService",
    "CoordinationError",
    "Lease",
    "ProgressReporter",
    "ResultStore",
    "STORE_ENV_VAR",
    "WORKLOAD_SETS",
    "campaign_status",
    "default_store",
    "default_worker_id",
    "default_workers",
    "derive_seed",
    "failure_payload",
    "format_duration",
    "resolve_workload_names",
    "run_campaign",
    "serve",
    "simulate_cell",
    "simulate_cells",
    "work_loop",
]
