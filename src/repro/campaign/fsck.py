"""Service-directory integrity audit: ``repro-campaign fsck [--repair]``.

A campaign service directory accumulates durable state from many processes —
JSONL result rows, content-addressed trace blobs, per-lease JSON records, lock
sidecars, and staging temp files.  Crashes (real or injected via
``REPRO_FAULTS``, see :mod:`repro.faults`) leave characteristic residue in each
layer; ``fsck`` walks all of them, reports what it finds, and with ``--repair``
restores the directory to a state a fleet can safely resume from:

* **store rows** — quarantined lines (unparseable, bad CRC, unknown schema
  version) and pre-CRC legacy rows.  Repair compacts the store: quarantined
  raw lines move to the ``<store>.quarantine`` sidecar and legacy rows are
  rewritten with version + CRC stamps.
* **trace blobs** — every ``*.trace`` file is structurally validated (header
  syntax, column table vs payload length, payload checksum).  Repair renames a
  corrupt blob to ``*.trace.corrupt`` so loaders recapture instead of
  re-reading rot.
* **orphan temp files** — ``.*.tmp`` staging files older than ``--tmp-age``
  (a crash between ``mkstemp`` and ``os.replace``).  Repair unlinks them.
* **lease records** — unparseable lease JSON (repair: quarantine-rename, then
  re-cover any cells of the grid left without a lease, a stored result, or a
  failure row via fresh ``<workload>-fsckN`` pending leases) and running
  leases whose deadline lapsed more than a full lease period ago (the owner is
  long dead; repair resets them to ``pending`` *without* charging an attempt —
  the normal claim path already bills attempts and fails out-of-budget leases).
* **lock sidecars** — ``queue.lock`` / ``<store>.lock`` are reported for
  visibility; repair removes them only once the queue is fully terminal
  (``flock`` locks die with their holder, so a live fleet's sidecars are
  harmless and must not be yanked).

Exit codes: 0 — clean (or fully repaired); 1 — issues remain; 2 — the target
is not auditable (missing directory, no submitted campaign).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.campaign.coordinator import CampaignService, CoordinationError, Lease
from repro.campaign.store import ResultStore
from repro.trace.encoding import TraceEncodingError, validate_blob

#: Default minimum age (seconds) before a ``.*.tmp`` staging file counts as an
#: orphan — a live writer's temp file is younger than this.
DEFAULT_TMP_AGE_SECONDS = 60.0


class Finding:
    """One fsck observation: what is wrong, where, and whether repair fixed it."""

    def __init__(self, check: str, path: str, detail: str) -> None:
        self.check = check
        self.path = path
        self.detail = detail
        self.repaired = False
        self.advisory = False  # informational: never fails the audit

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "path": self.path,
            "detail": self.detail,
            "repaired": self.repaired,
            "advisory": self.advisory,
        }


class FsckReport:
    """The result of one audit pass: findings plus summary accounting."""

    def __init__(self, target: str) -> None:
        self.target = target
        self.findings: list[Finding] = []

    def add(
        self, check: str, path: str, detail: str, *, advisory: bool = False
    ) -> Finding:
        finding = Finding(check, path, detail)
        finding.advisory = advisory
        self.findings.append(finding)
        return finding

    @property
    def unresolved(self) -> list[Finding]:
        """Findings that still need attention (not repaired, not advisory)."""
        return [f for f in self.findings if not f.repaired and not f.advisory]

    @property
    def clean(self) -> bool:
        return not self.unresolved

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "unresolved": len(self.unresolved),
        }


# ------------------------------------------------------------------ store audit
def _audit_store(
    report: FsckReport, store_path: Path, repair: bool
) -> ResultStore | None:
    """Audit one JSONL result store; returns the loaded store (or None)."""
    if not store_path.exists():
        return None
    store = ResultStore(store_path)
    quarantined = store.quarantined()
    unstamped = store.unstamped_lines
    for entry in quarantined:
        report.add(
            "store-row",
            str(store_path),
            f"line {entry['line']} quarantined ({entry['reason']})",
        )
    if unstamped:
        report.add(
            "store-legacy",
            str(store_path),
            f"{unstamped} pre-CRC legacy rows (accepted, unverifiable)",
        )
    if repair and (quarantined or unstamped):
        # One compaction settles both: quarantined raw lines spill to the
        # sidecar, legacy rows come back out stamped with version + CRC.
        store.compact()
        for finding in report.findings:
            if finding.check in ("store-row", "store-legacy") and finding.path == str(
                store_path
            ):
                finding.repaired = True
    return store


# ------------------------------------------------------------------ trace audit
def _audit_traces(report: FsckReport, trace_dir: Path, repair: bool) -> None:
    if not trace_dir.exists():
        return
    for path in sorted(trace_dir.glob("*.trace")):
        try:
            validate_blob(path.read_bytes())
        except (TraceEncodingError, OSError) as error:
            finding = report.add("trace-blob", str(path), str(error))
            if repair:
                try:
                    # Out of the loader's ``*.trace`` glob: the next worker that
                    # needs this workload recaptures it from scratch.
                    path.rename(path.with_suffix(".trace.corrupt"))
                    finding.repaired = True
                except OSError:
                    pass


# ------------------------------------------------------------------ tmp orphans
def _audit_tmp_orphans(
    report: FsckReport, directories: list[Path], repair: bool, tmp_age: float
) -> None:
    now = time.time()
    seen: set[Path] = set()
    for directory in directories:
        if directory is None or not directory.exists() or directory in seen:
            continue
        seen.add(directory)
        for path in sorted(directory.glob(".*.tmp")):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # raced with a writer publishing it; not an orphan
            if age < tmp_age:
                continue
            finding = report.add(
                "tmp-orphan", str(path), f"staging file abandoned {age:.0f}s ago"
            )
            if repair:
                try:
                    path.unlink()
                    finding.repaired = True
                except OSError:
                    pass


# ------------------------------------------------------------------ lease audit
def _audit_leases(
    report: FsckReport,
    service: CampaignService,
    store: ResultStore | None,
    repair: bool,
) -> None:
    if not service.queue_dir.exists():
        return
    params = service.queue_params()
    lease_seconds = float(params.get("lease_seconds", 60.0))
    now = time.time()
    valid: list[Lease] = []
    corrupt_paths: list[Path] = []
    for path in sorted(service.queue_dir.glob("*.json")):
        try:
            valid.append(Lease.from_dict(json.loads(path.read_text(encoding="utf-8"))))
        except (json.JSONDecodeError, KeyError, OSError, TypeError):
            corrupt_paths.append(path)

    for path in corrupt_paths:
        finding = report.add("lease-corrupt", str(path), "unparseable lease record")
        if repair:
            try:
                path.rename(path.with_suffix(".json.corrupt"))
                finding.repaired = True
            except OSError:
                pass

    # Running leases whose owner has been silent for more than a full extra
    # lease period: claimable in principle, but with no worker polling they
    # stay wedged forever.  (A merely-lapsed lease inside the grace window is
    # normal takeover territory — not an fsck finding.)
    for lease in valid:
        if lease.state != "running":
            continue
        overdue = now - lease.deadline_unix
        if overdue <= lease_seconds:
            continue
        finding = report.add(
            "lease-lapsed",
            str(service._lease_path(lease.lease_id)),
            f"running lease {lease.lease_id} owned by {lease.owner!r} "
            f"lapsed {overdue:.0f}s ago",
        )
        if repair:
            with service._queue_locked():
                current = service._read_lease(lease.lease_id)
                if (
                    current is not None
                    and current.state == "running"
                    and current.deadline_unix == lease.deadline_unix
                ):
                    current.state = "pending"
                    current.owner = None
                    current.deadline_unix = 0.0
                    current.not_before_unix = 0.0
                    # No attempts charge: the claim path bills attempts and
                    # retires out-of-budget leases with failure rows.
                    service._write_lease(current)
                    finding.repaired = True

    # Grid coverage: after quarantining corrupt leases, every cell must be
    # reachable — covered by a lease, already stored, or terminally failed.
    covered = {fp for lease in valid for fp in lease.fingerprints}
    orphans: dict[str, list] = {}
    for fingerprint, cell in service.cells_by_fingerprint().items():
        if fingerprint in covered:
            continue
        if store is not None and (
            fingerprint in store or store.get_failure(fingerprint) is not None
        ):
            continue
        orphans.setdefault(cell.workload_name, []).append(cell)
    if orphans:
        total = sum(len(cells) for cells in orphans.values())
        finding = report.add(
            "lease-coverage",
            str(service.queue_dir),
            f"{total} grid cells covered by no lease, result, or failure row",
        )
        if repair:
            with service._queue_locked():
                existing = {lease.lease_id for lease in service.leases()}
                for workload_name, cells in sorted(orphans.items()):
                    index = 0
                    while f"{workload_name}-fsck{index}" in existing:
                        index += 1
                    service._write_lease(
                        Lease(
                            lease_id=f"{workload_name}-fsck{index}",
                            workload=workload_name,
                            fingerprints=[cell.fingerprint for cell in cells],
                        )
                    )
            finding.repaired = True


# ------------------------------------------------------------------ lock audit
def _audit_locks(
    report: FsckReport, service: CampaignService, repair: bool
) -> None:
    sidecars = [
        service.root / "queue.lock",
        service.store_path.with_suffix(service.store_path.suffix + ".lock"),
    ]
    terminal = service.queue_complete()
    for path in sidecars:
        if not path.exists():
            continue
        finding = report.add(
            "lock-sidecar",
            str(path),
            "advisory lock sidecar present"
            + ("" if terminal else " (queue still active: left alone)"),
            advisory=True,
        )
        if repair and terminal:
            # flock state dies with its holder, so on a terminal queue the
            # sidecar is pure residue.
            try:
                path.unlink()
                finding.repaired = True
            except OSError:
                pass


# ------------------------------------------------------------------ entry points
def fsck_store(
    store_path: str | Path,
    repair: bool = False,
    tmp_age: float = DEFAULT_TMP_AGE_SECONDS,
) -> FsckReport:
    """Audit a bare result store (no service directory)."""
    store_path = Path(store_path)
    report = FsckReport(str(store_path))
    if not store_path.exists():
        report.add("target", str(store_path), "store file does not exist")
        return report
    _audit_store(report, store_path, repair)
    _audit_tmp_orphans(report, [store_path.parent], repair, tmp_age)
    return report


def fsck_service(
    service_dir: str | Path,
    repair: bool = False,
    tmp_age: float = DEFAULT_TMP_AGE_SECONDS,
) -> FsckReport:
    """Audit a full campaign service directory (store, traces, queue, locks)."""
    service = CampaignService(service_dir)
    report = FsckReport(str(service.root))
    if not service.root.exists():
        report.add("target", str(service.root), "service directory does not exist")
        return report
    store = _audit_store(report, service.store_path, repair)
    _audit_traces(report, service.trace_dir, repair)
    _audit_tmp_orphans(
        report,
        [service.root, service.queue_dir, service.trace_dir],
        repair,
        tmp_age,
    )
    try:
        _audit_leases(report, service, store, repair)
    except CoordinationError as error:
        report.add("campaign", str(service.campaign_path), str(error))
    _audit_locks(report, service, repair)
    return report


def render_table(report: FsckReport) -> str:
    """A human-readable audit summary (the CLI's default output)."""
    lines = [f"fsck {report.target}"]
    if not report.findings:
        lines.append("  clean: no findings")
        return "\n".join(lines)
    for finding in report.findings:
        status = (
            "repaired"
            if finding.repaired
            else ("info" if finding.advisory else "ISSUE")
        )
        lines.append(
            f"  [{status:>8}] {finding.check:<14} {finding.path}: {finding.detail}"
        )
    lines.append(
        f"  {len(report.findings)} findings, {len(report.unresolved)} unresolved"
    )
    return "\n".join(lines)
