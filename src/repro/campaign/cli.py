"""Command-line front-end: ``python -m repro.campaign`` (or ``repro-campaign``).

Seven subcommands::

    run      simulate a (configs × workloads) grid, persisting results to a store
    status   report done/missing cells for a grid against a store (no simulation)
    report   tabulate stored results (IPC by default, speedups with --baseline,
             per-cell execution telemetry with --metrics;
             --format json|csv for downstream plotting)
    compact  rewrite the store dropping superseded/corrupt rows (optionally capped
             with --max-mb, evicting oldest rows; REPRO_RESULT_STORE_MAX_MB applies
             the same cap automatically after every append)
    serve    submit a grid to a shared service directory as leased work and stream
             progress/telemetry while a worker fleet completes it (optionally
             spawning --local-workers N on this host)
    work     run one worker against a service directory: lease cells, heartbeat,
             simulate, append to the shared store; exits when the queue completes
             (SIGTERM/SIGINT release the held lease back to the queue first)
    fsck     audit a service directory or bare store for crash residue — torn or
             corrupt rows, bad trace blobs, orphaned temp files, wedged leases —
             and optionally --repair it back to a resumable state

Examples::

    python -m repro.campaign run --configs Baseline_6_64,EOLE_4_64 \\
        --workloads subset --store results/campaign.jsonl --workers 4
    python -m repro.campaign status --store results/campaign.jsonl \\
        --configs Baseline_6_64,EOLE_4_64 --workloads subset
    python -m repro.campaign report --store results/campaign.jsonl \\
        --baseline Baseline_6_64
    python -m repro.campaign serve --service /shared/fleet \\
        --configs Baseline_6_64,EOLE_4_64 --workloads subset --local-workers 2
    python -m repro.campaign work --service /shared/fleet     # on any fleet host
    python -m repro.campaign fsck --service /shared/fleet --repair
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import subprocess
import sys

from repro.campaign.coordinator import (
    DEFAULT_BACKOFF_SECONDS,
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    CampaignService,
    default_worker_id,
    serve,
    work_loop,
)
from repro.campaign.executor import campaign_status, default_workers, run_campaign
from repro.campaign.fsck import (
    DEFAULT_TMP_AGE_SECONDS,
    fsck_service,
    fsck_store,
    render_table,
)
from repro.campaign.spec import WORKLOAD_SETS, Campaign
from repro.campaign.store import MAX_MB_ENV_VAR, STORE_ENV_VAR, ResultStore
from repro.errors import ReproError
from repro.pipeline.config import NAMED_CONFIGS
from repro.pipeline.stats import SimStats


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--configs",
        required=True,
        help=f"comma-separated named configurations (known: {', '.join(NAMED_CONFIGS)})",
    )
    parser.add_argument(
        "--workloads",
        default="all",
        help=f"named set ({', '.join(WORKLOAD_SETS)}) or comma-separated workload names",
    )
    parser.add_argument(
        "--max-uops",
        type=int,
        default=int(os.environ.get("REPRO_SIM_UOPS", "12000")),
        help="committed-µ-op budget per cell (default: env REPRO_SIM_UOPS or 12000)",
    )
    parser.add_argument(
        "--warmup-uops",
        type=int,
        default=int(os.environ.get("REPRO_SIM_WARMUP", "3000")),
        help="warm-up µ-ops per cell (default: env REPRO_SIM_WARMUP or 3000)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="campaign seed for per-cell predictor seeds (default: configs' own seeds)",
    )


def _add_store_argument(parser: argparse.ArgumentParser, required: bool) -> None:
    parser.add_argument(
        "--store",
        default=os.environ.get(STORE_ENV_VAR),
        required=required and not os.environ.get(STORE_ENV_VAR),
        help=f"result-store path (default: env {STORE_ENV_VAR})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Parallel simulation campaigns with a persistent result store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="simulate a configs × workloads grid")
    _add_grid_arguments(run_parser)
    _add_store_argument(run_parser, required=False)
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=f"worker processes (default: env {'REPRO_CAMPAIGN_WORKERS'} or all cores, "
        f"currently {default_workers()})",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    status_parser = commands.add_parser("status", help="done/missing cells for a grid")
    _add_grid_arguments(status_parser)
    _add_store_argument(status_parser, required=True)

    compact_parser = commands.add_parser(
        "compact", help="rewrite the store dropping superseded/corrupt rows"
    )
    _add_store_argument(compact_parser, required=True)
    compact_parser.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="size cap in MB: evict oldest rows until the store fits "
        f"(default: env {MAX_MB_ENV_VAR}, else no cap)",
    )

    serve_parser = commands.add_parser(
        "serve", help="submit a grid to a service directory and stream fleet progress"
    )
    _add_grid_arguments(serve_parser)
    serve_parser.add_argument(
        "--service", required=True, help="shared service directory (NFS-safe)"
    )
    serve_parser.add_argument(
        "--lease-seconds",
        type=float,
        default=DEFAULT_LEASE_SECONDS,
        help=f"lease heartbeat deadline (default {DEFAULT_LEASE_SECONDS:.0f}s); a "
        "worker that stops heartbeating for this long forfeits its lease",
    )
    serve_parser.add_argument(
        "--max-attempts",
        type=int,
        default=DEFAULT_MAX_ATTEMPTS,
        help=f"claims per lease before its cells are marked failed "
        f"(default {DEFAULT_MAX_ATTEMPTS})",
    )
    serve_parser.add_argument(
        "--backoff-seconds",
        type=float,
        default=DEFAULT_BACKOFF_SECONDS,
        help="base of the exponential requeue backoff "
        f"(default {DEFAULT_BACKOFF_SECONDS:.0f}s)",
    )
    serve_parser.add_argument(
        "--lease-width",
        type=int,
        default=None,
        help="max cells per lease (default: one lease per workload)",
    )
    serve_parser.add_argument(
        "--local-workers",
        type=int,
        default=0,
        help="spawn N `work` subprocesses on this host (default 0: external fleet)",
    )
    serve_parser.add_argument(
        "--poll-seconds", type=float, default=0.5, help="store/queue poll interval"
    )
    serve_parser.add_argument(
        "--timeout-seconds",
        type=float,
        default=None,
        help="give up (exit 2) if the grid is incomplete after this long",
    )
    serve_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    work_parser = commands.add_parser(
        "work", help="run one worker against a service directory"
    )
    work_parser.add_argument(
        "--service", required=True, help="shared service directory (NFS-safe)"
    )
    work_parser.add_argument(
        "--worker-id",
        default=None,
        help=f"fleet-unique worker name (default host:pid, e.g. {default_worker_id()})",
    )
    work_parser.add_argument(
        "--poll-seconds", type=float, default=0.5, help="claim poll interval"
    )
    work_parser.add_argument(
        "--once", action="store_true", help="process at most one lease, then exit"
    )
    work_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-lease progress lines"
    )

    fsck_parser = commands.add_parser(
        "fsck", help="audit (and optionally repair) a service directory or store"
    )
    fsck_target = fsck_parser.add_mutually_exclusive_group(required=True)
    fsck_target.add_argument(
        "--service", help="campaign service directory to audit end to end"
    )
    fsck_target.add_argument(
        "--store", help="bare result-store JSONL file to audit (no queue/traces)"
    )
    fsck_parser.add_argument(
        "--repair",
        action="store_true",
        help="fix what can be fixed: compact quarantined/legacy store rows, "
        "quarantine corrupt trace blobs and lease records, sweep orphaned temp "
        "files, requeue wedged leases, re-cover orphaned grid cells",
    )
    fsck_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: human table)",
    )
    fsck_parser.add_argument(
        "--tmp-age",
        type=float,
        default=DEFAULT_TMP_AGE_SECONDS,
        help="seconds before a .*.tmp staging file counts as an orphan "
        f"(default {DEFAULT_TMP_AGE_SECONDS:.0f}; live writers are younger)",
    )

    report_parser = commands.add_parser("report", help="tabulate stored results")
    _add_store_argument(report_parser, required=True)
    report_parser.add_argument(
        "--baseline",
        default=None,
        help="config name to normalise against (reports speedups instead of IPCs)",
    )
    report_parser.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        default="table",
        help="output format: human table (default), or json/csv for downstream plotting",
    )
    report_parser.add_argument(
        "--metrics",
        action="store_true",
        help="report per-cell execution telemetry (wall-clock, µops/s, trace-cache "
        "hits) instead of IPCs",
    )
    return parser


def _campaign_from_args(args: argparse.Namespace) -> Campaign:
    return Campaign.from_names(
        config_names=args.configs,
        workload_selector=args.workloads,
        max_uops=args.max_uops,
        warmup_uops=args.warmup_uops,
        seed=args.seed,
    )


# ---------------------------------------------------------------------- subcommands
def _cmd_run(args: argparse.Namespace) -> int:
    campaign = _campaign_from_args(args)
    store = ResultStore(args.store) if args.store else None
    outcome = run_campaign(
        campaign, store=store, workers=args.workers, progress=not args.quiet
    )
    grid = outcome.by_config()
    workload_names = campaign.workload_names
    label_width = max(len(name) for name in workload_names) + 2
    print(f"campaign: {len(campaign.configs)} configs × {len(workload_names)} workloads")
    for config in campaign.configs:
        print(f"\n{config.name}")
        for name in workload_names:
            result = grid.get(config.name, {}).get(name)
            if result is not None:
                print(f"  {name.ljust(label_width)} IPC={result.ipc:.3f}")
            else:
                error = outcome.failed.get((config.name, name), {})
                print(
                    f"  {name.ljust(label_width)} FAILED"
                    f" ({error.get('type', '?')}: {error.get('message', '?')})"
                )
    failed_note = f", {outcome.failures} FAILED" if outcome.failed else ""
    print(
        f"\n{outcome.simulated} simulated, {outcome.from_store} from store, "
        f"{outcome.from_cache} from cache{failed_note}, "
        f"{outcome.elapsed_seconds:.1f}s elapsed"
        + (f", store: {store.path}" if store is not None else ", no store (transient)")
    )
    return 1 if outcome.failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    campaign = _campaign_from_args(args)
    service = CampaignService(args.service)
    workers: list[subprocess.Popen] = []
    try:
        # Submit before spawning: workers poll until the queue exists, but an
        # early submit gives them leases on their first claim.
        service.submit(
            campaign,
            lease_seconds=args.lease_seconds,
            max_attempts=args.max_attempts,
            backoff_seconds=args.backoff_seconds,
            lease_width=args.lease_width,
        )
        for index in range(args.local_workers):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.campaign",
                        "work",
                        "--service",
                        args.service,
                        "--worker-id",
                        f"{default_worker_id()}-local{index}",
                        "--quiet",
                    ],
                )
            )
        summary = serve(
            service,
            campaign,
            lease_seconds=args.lease_seconds,
            max_attempts=args.max_attempts,
            backoff_seconds=args.backoff_seconds,
            lease_width=args.lease_width,
            poll_seconds=args.poll_seconds,
            progress=not args.quiet,
            timeout_seconds=args.timeout_seconds,
        )
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=10)
            except subprocess.TimeoutExpired:
                worker.kill()
    failed = summary["failed"]
    print(
        f"served {summary['campaign']}: {len(summary['results'])}/{summary['cells']} "
        f"cells done, {len(failed)} failed, {len(summary['missing'])} missing, "
        f"{summary['elapsed_seconds']:.1f}s elapsed, store: {service.store_path}"
    )
    for row in failed.values():
        error = row["error"]
        print(
            f"  FAILED {row['config']}/{row['workload']}: "
            f"{error.get('type')}: {error.get('message')}"
        )
    return 1 if failed or summary["missing"] else 0


def _cmd_work(args: argparse.Namespace) -> int:
    service = CampaignService(args.service)
    # handle_signals: a drained/redeployed worker (SIGTERM from an orchestrator,
    # Ctrl-C at a terminal) releases its held lease back to pending immediately
    # instead of forcing the fleet to wait out the lease timeout.
    counts = work_loop(
        service,
        worker_id=args.worker_id,
        poll_seconds=args.poll_seconds,
        once=args.once,
        progress=not args.quiet,
        handle_signals=True,
    )
    interrupted = counts.get("interrupted")
    if not args.quiet:
        print(
            f"worker done: {counts['processed']} leases processed, "
            f"{counts['requeued']} requeued, {counts['lost']} lost, "
            f"{counts['released']} released"
            + (f" (interrupted by {interrupted})" if interrupted else "")
        )
    return 130 if interrupted else 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    if args.service:
        report = fsck_service(args.service, repair=args.repair, tmp_age=args.tmp_age)
    else:
        report = fsck_store(args.store, repair=args.repair, tmp_age=args.tmp_age)
    if report.findings and report.findings[0].check == "target":
        print(f"error: {report.findings[0].detail}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_table(report))
    return 0 if report.clean else 1


def _cmd_compact(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    max_bytes = int(args.max_mb * 1024 * 1024) if args.max_mb else None
    outcome = store.compact(max_bytes)
    print(
        f"store {store.path}: {outcome['bytes_before']} -> {outcome['bytes_after']} bytes, "
        f"{outcome['records']} records kept "
        f"({outcome['superseded_dropped']} superseded, {outcome['corrupt_dropped']} corrupt, "
        f"{outcome['evicted']} evicted)"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    campaign = _campaign_from_args(args)
    store = ResultStore(args.store)
    status = campaign_status(campaign, store)
    print(
        f"store {store.path}: {len(store)} records "
        f"({store.skipped_lines} corrupt lines skipped)"
    )
    print(f"grid: {status['done']}/{status['total']} cells done, {status['missing']} missing")
    for cell_id in status["missing_cells"]:
        print(f"  missing {cell_id}")
    return 0 if status["missing"] == 0 else 1


def _report_values(
    ipcs: dict[str, dict[str, float]],
    configs: list[str],
    names: list[str],
    baseline: str | None,
) -> dict[str, dict[str, float | None]]:
    """Workload → config → value (IPC, or speedup over the baseline config)."""
    values: dict[str, dict[str, float | None]] = {}
    for name in names:
        row: dict[str, float | None] = {}
        for config in configs:
            value = ipcs[config].get(name)
            if value is not None and baseline:
                base = ipcs[baseline].get(name)
                value = value / base if base else None
            row[config] = value
        values[name] = row
    return values


def _metrics_rows(records: list[dict]) -> list[dict]:
    """Per-cell telemetry rows for ``report --metrics`` (missing telemetry → None)."""
    rows: list[dict] = []
    for record in records:
        stats = SimStats.from_dict(record["result"]["stats"])
        telemetry = record.get("telemetry") or {}
        trace_cache = telemetry.get("trace_cache") or {}
        hits = trace_cache.get("hits")
        store_hits = trace_cache.get("store_hits")
        rows.append(
            {
                "config": record["config"],
                "workload": record["workload"],
                "ipc": stats.ipc,
                "wall_seconds": telemetry.get("wall_seconds"),
                "uops_per_second": telemetry.get("uops_per_second"),
                "trace_captures": trace_cache.get("captures"),
                "trace_hits": (
                    hits + store_hits if hits is not None and store_hits is not None else None
                ),
            }
        )
    return rows


def _cmd_report_metrics(args: argparse.Namespace, store: ResultStore, records) -> int:
    rows = _metrics_rows(records)
    output_format = getattr(args, "format", "table")
    if output_format == "json":
        print(json.dumps({"store": str(store.path), "cells": rows}, indent=1, sort_keys=True))
        return 0
    columns = (
        "config",
        "workload",
        "ipc",
        "wall_seconds",
        "uops_per_second",
        "trace_captures",
        "trace_hits",
    )
    if output_format == "csv":
        writer = csv.writer(sys.stdout)
        writer.writerow(columns)
        for row in rows:
            writer.writerow(["" if row[c] is None else row[c] for c in columns])
        return 0

    def fmt(row: dict, column: str) -> str:
        value = row[column]
        if value is None:
            return "—"
        if column == "ipc":
            return f"{value:.3f}"
        if column == "wall_seconds":
            return f"{value:.2f}"
        if column == "uops_per_second":
            return f"{value:,.0f}"
        return str(value)

    widths = {
        c: max(len(c), *(len(fmt(row, c)) for row in rows)) if rows else len(c)
        for c in columns
    }
    print(f"store {store.path}: per-cell execution telemetry")
    print("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(fmt(row, c).ljust(widths[c]) for c in columns))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    records = store.records()
    if not records:
        print(f"store {store.path} is empty", file=sys.stderr)
        return 1
    if getattr(args, "metrics", False):
        return _cmd_report_metrics(args, store, records)
    ipcs: dict[str, dict[str, float]] = {}
    workload_names: dict[str, None] = {}
    for record in records:
        stats = SimStats.from_dict(record["result"]["stats"])
        ipcs.setdefault(record["config"], {})[record["workload"]] = stats.ipc
        workload_names.setdefault(record["workload"])
    baseline = args.baseline
    if baseline is not None and baseline not in ipcs:
        print(f"baseline config {baseline!r} not in store (has: {sorted(ipcs)})", file=sys.stderr)
        return 1
    configs = sorted(ipcs)
    names = list(workload_names)
    kind = f"speedup over {baseline}" if baseline else "IPC"
    values = _report_values(ipcs, configs, names, baseline)

    output_format = getattr(args, "format", "table")
    if output_format == "json":
        print(
            json.dumps(
                {
                    "store": str(store.path),
                    "metric": "speedup" if baseline else "ipc",
                    "baseline": baseline,
                    "configs": configs,
                    "workloads": names,
                    "values": values,
                },
                indent=1,
                sort_keys=True,
            )
        )
        return 0
    if output_format == "csv":
        writer = csv.writer(sys.stdout)
        writer.writerow(["workload"] + configs)
        for name in names:
            writer.writerow(
                [name]
                + [
                    "" if values[name][config] is None else f"{values[name][config]:.6f}"
                    for config in configs
                ]
            )
        return 0

    label_width = max([len("workload")] + [len(n) for n in names]) + 2
    column_width = max([10] + [len(c) + 2 for c in configs])
    print(f"store {store.path}: {kind}")
    print("workload".ljust(label_width) + "".join(c.rjust(column_width) for c in configs))
    for name in names:
        row = name.ljust(label_width)
        for config in configs:
            value = values[name][config]
            row += (f"{value:.3f}" if value is not None else "—").rjust(column_width)
        print(row)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "status": _cmd_status,
        "report": _cmd_report,
        "compact": _cmd_compact,
        "serve": _cmd_serve,
        "work": _cmd_work,
        "fsck": _cmd_fsck,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # The stdout consumer (e.g. ``report --format csv | head``) closed the pipe;
        # suppress the noise and exit cleanly like a well-behaved filter.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
