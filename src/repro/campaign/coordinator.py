"""Distributed campaign coordination: a leased work queue over a shared directory.

The single-host executor (:mod:`repro.campaign.executor`) shards cells over a
``ProcessPoolExecutor``; this module promotes the same grid to a *fleet*: any number
of worker processes — on one machine or many, sharing the service directory over
NFS — lease cells, simulate them, and append to one shared
:class:`~repro.campaign.store.ResultStore`.  There is no network daemon: the
"coordinator" is the directory itself, and every state transition is a file-lock
protected atomic rewrite of a small JSON lease record, mirroring how the SPEC2006
harnesses run ``PrunPool`` job fleets with per-node result files plus an
aggregation pass.

Service directory layout::

    <service>/
      campaign.json      # the submitted grid (Campaign.to_spec_dict + queue params)
      results.jsonl      # the shared ResultStore (fcntl-locked, see store.py)
      traces/            # shared content-addressed TraceStore: one capture per
                         # workload per fleet — the lease holder captures, every
                         # later worker loads
      queue/
        <lease>.json     # one lease per same-workload cell group
      queue.lock         # advisory lock guarding every queue transition

Lease protocol (all transitions under ``queue.lock``):

* ``submit`` creates one *pending* lease per same-workload cell group (grouping by
  workload keeps one trace capture per lease; ``lease_width`` chunks the group).
* A worker *claims* an eligible lease — pending with ``not_before`` in the past, or
  running with a lapsed ``deadline`` (its owner stopped heartbeating: a dead
  worker's cells are picked up by the next claimer) — by writing itself as
  ``owner`` with ``deadline = now + lease_seconds`` and ``attempts += 1``.
* While simulating, the worker *heartbeats*: a daemon thread re-extends the
  deadline every ``lease_seconds / 3``.  A worker that is SIGKILLed simply stops
  heartbeating and its lease lapses.
* On success the worker marks the lease *done*; its results are already in the
  shared store (appended cell by cell, so even a mid-lease death loses only the
  in-flight cell).  On a cell error the lease is *requeued* with exponential
  backoff (``backoff_seconds * 2**(attempts-1)``); cells that already succeeded
  are skipped on retry via the store.  After ``max_attempts`` the lease is marked
  *failed* and the missing cells get structured failure rows in the store.

Determinism: cells are self-contained and seed-derived, so a fleet run — whatever
the interleaving, crashes and retries — produces results byte-identical to a
serial :func:`~repro.campaign.executor.run_campaign` of the same grid.  Clocks
only gate liveness (deadlines), never results; multi-host fleets assume loosely
NTP-synced clocks and a coherent shared filesystem.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.campaign.executor import (
    _replay_groups,
    _simulate_cell_group,
    _simulate_one_entry,
    failure_payload,
)
from repro.faults import active_faults
from repro.faults.sites import (
    COORD_CLAIM_DELAY,
    COORD_CLOCK_SKEW,
    COORD_COMPLETE_DELAY,
    COORD_HEARTBEAT_DROP,
    WORKER_DIE_AFTER_CLAIM,
    WORKER_DIE_BEFORE_COMPLETE,
    WORKER_DIE_MID_LEASE,
)
from repro.pipeline.multi_replay import multi_replay_enabled
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import Campaign, CampaignCell
from repro.campaign.store import ResultStore
from repro.errors import ReproError
from repro.pipeline.stats import SimulationResult
from repro.trace.store import TRACE_STORE_ENV_VAR

try:  # POSIX-only; the queue degrades to lock-free on other platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Default lease duration: a worker must heartbeat within this window or its lease
#: is considered abandoned.  Must comfortably exceed the heartbeat interval
#: (``lease_seconds / 3``); cell durations do not matter — the heartbeat thread
#: runs concurrently with the simulation.
DEFAULT_LEASE_SECONDS = 60.0

#: Default bounded-retry budget per lease (claims, including the first).
DEFAULT_MAX_ATTEMPTS = 3

#: Default base of the exponential requeue backoff.
DEFAULT_BACKOFF_SECONDS = 1.0


def default_worker_id() -> str:
    """A fleet-unique worker identity: ``host:pid``."""
    return f"{socket.gethostname()}:{os.getpid()}"


class CoordinationError(ReproError):
    """A service-directory protocol violation (mismatched resubmission, no grid…)."""


@dataclass
class Lease:
    """One unit of fleet work: a same-workload group of cell fingerprints."""

    lease_id: str
    workload: str
    fingerprints: list[str]
    state: str = "pending"  # pending | running | done | failed
    owner: str | None = None
    deadline_unix: float = 0.0
    not_before_unix: float = 0.0
    attempts: int = 0
    errors: list[dict] | None = None

    def to_dict(self) -> dict:
        return {
            "lease_id": self.lease_id,
            "workload": self.workload,
            "fingerprints": list(self.fingerprints),
            "state": self.state,
            "owner": self.owner,
            "deadline_unix": self.deadline_unix,
            "not_before_unix": self.not_before_unix,
            "attempts": self.attempts,
            "errors": list(self.errors or []),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        return cls(
            lease_id=data["lease_id"],
            workload=data["workload"],
            fingerprints=list(data["fingerprints"]),
            state=data["state"],
            owner=data.get("owner"),
            deadline_unix=data.get("deadline_unix", 0.0),
            not_before_unix=data.get("not_before_unix", 0.0),
            attempts=data.get("attempts", 0),
            errors=list(data.get("errors") or []),
        )


class CampaignService:
    """A shared-directory campaign coordinator (see the module docstring)."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.queue_dir = self.root / "queue"
        self.campaign_path = self.root / "campaign.json"
        self.store_path = self.root / "results.jsonl"
        self.trace_dir = self.root / "traces"
        self._campaign: Campaign | None = None
        self._cells: dict[str, CampaignCell] | None = None

    # ------------------------------------------------------------------ locking
    @contextmanager
    def _queue_locked(self):
        """Hold the queue-wide advisory lock (every lease transition runs inside)."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with (self.root / "queue.lock").open("a+", encoding="utf-8") as lock_file:
            fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
            yield

    # ------------------------------------------------------------------ submission
    def submit(
        self,
        campaign: Campaign,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        lease_width: int | None = None,
    ) -> int:
        """Publish ``campaign`` to the service directory; returns the lease count.

        Cells are grouped into one lease per workload (chunked by ``lease_width``)
        so each lease holder captures its workload's trace exactly once and every
        configuration in the lease replays it — the fleet-level twin of the
        executor's same-workload batching.  Resubmitting the identical grid is a
        no-op (a resume); submitting a *different* grid to a non-empty service
        directory raises.
        """
        spec = campaign.to_spec_dict()
        payload = {
            "campaign": spec,
            "queue": {
                "lease_seconds": lease_seconds,
                "max_attempts": max_attempts,
                "backoff_seconds": backoff_seconds,
            },
        }
        with self._queue_locked():
            if self.campaign_path.exists():
                existing = json.loads(self.campaign_path.read_text(encoding="utf-8"))
                if existing["campaign"] != spec:
                    raise CoordinationError(
                        f"service {self.root} already holds a different campaign "
                        f"({existing['campaign'].get('name')!r}); use a fresh directory"
                    )
                return len(self.leases())
            self.queue_dir.mkdir(parents=True, exist_ok=True)
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            self._write_json(self.campaign_path, payload)
            groups: dict[str, list[CampaignCell]] = {}
            for cell in campaign.cells():
                groups.setdefault(cell.workload_name, []).append(cell)
            count = 0
            for workload_name, group in groups.items():
                width = lease_width if lease_width else len(group)
                for start in range(0, len(group), width):
                    chunk = group[start : start + width]
                    lease = Lease(
                        lease_id=f"{workload_name}-{start // width}",
                        workload=workload_name,
                        fingerprints=[cell.fingerprint for cell in chunk],
                    )
                    self._write_lease(lease)
                    count += 1
            return count

    # ------------------------------------------------------------------ accessors
    def _read_payload(self) -> dict:
        if not self.campaign_path.exists():
            raise CoordinationError(f"service {self.root} has no submitted campaign")
        return json.loads(self.campaign_path.read_text(encoding="utf-8"))

    def campaign(self) -> Campaign:
        """The submitted grid, rebuilt from the service directory."""
        if self._campaign is None:
            self._campaign = Campaign.from_spec_dict(self._read_payload()["campaign"])
        return self._campaign

    def queue_params(self) -> dict:
        """The fleet-wide lease parameters recorded at submission."""
        return self._read_payload()["queue"]

    def cells_by_fingerprint(self) -> dict[str, CampaignCell]:
        """Every cell of the submitted grid, keyed by its store fingerprint."""
        if self._cells is None:
            self._cells = {cell.fingerprint: cell for cell in self.campaign().cells()}
        return self._cells

    def result_store(self) -> ResultStore:
        """A fresh handle on the shared result store."""
        return ResultStore(self.store_path)

    def leases(self) -> list[Lease]:
        """Every lease record, sorted by id (point-in-time snapshot)."""
        if not self.queue_dir.exists():
            return []
        leases = []
        for path in sorted(self.queue_dir.glob("*.json")):
            try:
                leases.append(Lease.from_dict(json.loads(path.read_text(encoding="utf-8"))))
            except (json.JSONDecodeError, KeyError, OSError):
                continue  # mid-replace read on a non-atomic filesystem; next scan sees it
        return leases

    def queue_complete(self) -> bool:
        """True when every lease is terminal (``done`` or ``failed``)."""
        leases = self.leases()
        return bool(leases) and all(
            lease.state in ("done", "failed") for lease in leases
        )

    def status(self) -> dict:
        """Queue + store accounting for ``serve`` streaming and CLI status."""
        leases = self.leases()
        by_state: dict[str, int] = {}
        for lease in leases:
            by_state[lease.state] = by_state.get(lease.state, 0) + 1
        store = self.result_store()
        fingerprints = set(self.cells_by_fingerprint())
        return {
            "root": str(self.root),
            "leases": len(leases),
            "lease_states": by_state,
            "cells_total": len(fingerprints),
            "cells_done": sum(1 for fp in fingerprints if fp in store),
            "cells_failed": sum(
                1 for fp in fingerprints if store.get_failure(fp) is not None and fp not in store
            ),
        }

    # ------------------------------------------------------------------ lease I/O
    def _lease_path(self, lease_id: str) -> Path:
        return self.queue_dir / f"{lease_id}.json"

    def _write_json(self, path: Path, payload: dict) -> None:
        """Atomic JSON publish: unique temp name + rename, safe under concurrency."""
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, sort_keys=True)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _write_lease(self, lease: Lease) -> None:
        self._write_json(self._lease_path(lease.lease_id), lease.to_dict())

    def _read_lease(self, lease_id: str) -> Lease | None:
        try:
            return Lease.from_dict(
                json.loads(self._lease_path(lease_id).read_text(encoding="utf-8"))
            )
        except (OSError, json.JSONDecodeError, KeyError):
            return None

    # ------------------------------------------------------------------ transitions
    def claim(self, worker_id: str) -> Lease | None:
        """Claim the next eligible lease for ``worker_id`` (None when nothing is).

        Eligible: ``pending`` whose backoff window has passed, or ``running`` whose
        deadline lapsed (the owner died or stalled — this *is* the requeue path for
        dead workers).  A lapsed lease that is out of attempts transitions to
        ``failed`` instead, and the cells it never finished get failure rows.
        """
        now = time.time()
        faults = active_faults()
        if faults is not None:
            skew = faults.fires(COORD_CLOCK_SKEW)
            if skew is not None:
                now += skew.skew  # this claimant's clock runs fast/slow vs the fleet
            delay = faults.fires(COORD_CLAIM_DELAY)
            if delay is not None and delay.delay > 0:
                time.sleep(delay.delay)
        params = self.queue_params()
        with self._queue_locked():
            for lease in self.leases():
                if lease.state == "pending" and lease.not_before_unix <= now:
                    eligible = True
                elif lease.state == "running" and lease.deadline_unix < now:
                    eligible = True
                else:
                    continue
                if eligible and lease.attempts >= params["max_attempts"]:
                    # Out of retries: a lapsed running lease whose every claim
                    # died (or a requeued one nobody can finish) fails here.
                    lease.errors = (lease.errors or []) + [
                        {
                            "type": "LeaseExpired",
                            "message": f"lease deadline lapsed after "
                            f"{lease.attempts} attempts (last owner {lease.owner})",
                            "unix_time": now,
                        }
                    ]
                    self._finalise_failure(lease)
                    continue
                lease.state = "running"
                lease.owner = worker_id
                lease.deadline_unix = now + params["lease_seconds"]
                lease.attempts += 1
                self._write_lease(lease)
                return lease
        return None

    def heartbeat(self, lease: Lease, worker_id: str) -> bool:
        """Extend the lease deadline; False when the lease is no longer ours."""
        faults = active_faults()
        if faults is not None and faults.fires(COORD_HEARTBEAT_DROP) is not None:
            # The beat was "lost on the wire": the worker believes it succeeded
            # but the deadline is not extended — enough drops lapse the lease.
            return True
        with self._queue_locked():
            current = self._read_lease(lease.lease_id)
            if current is None or current.owner != worker_id or current.state != "running":
                return False
            current.deadline_unix = time.time() + self.queue_params()["lease_seconds"]
            self._write_lease(current)
            return True

    def complete(self, lease: Lease, worker_id: str) -> bool:
        """Mark the lease done; False when it was reassigned underneath us."""
        faults = active_faults()
        if faults is not None:
            delay = faults.fires(COORD_COMPLETE_DELAY)
            if delay is not None and delay.delay > 0:
                # Widen the lapse window right before the terminal transition —
                # the owner-fencing below must still reject a reassigned lease.
                time.sleep(delay.delay)
        with self._queue_locked():
            current = self._read_lease(lease.lease_id)
            if current is None or current.owner != worker_id or current.state != "running":
                return False
            current.state = "done"
            current.deadline_unix = 0.0
            self._write_lease(current)
            return True

    def release(self, lease: Lease, worker_id: str) -> bool:
        """Politely hand a running lease back to the queue (owner-fenced).

        The exit path of a SIGTERM/SIGINT-ed worker: unlike a lapse, the lease is
        requeued *immediately* (no lease-timeout wait, no backoff) and the claim
        that is being abandoned is refunded — a politely-killed worker must not
        burn the lease's retry budget.  False when the lease is no longer ours.
        """
        with self._queue_locked():
            current = self._read_lease(lease.lease_id)
            if current is None or current.owner != worker_id or current.state != "running":
                return False
            current.state = "pending"
            current.owner = None
            current.deadline_unix = 0.0
            current.not_before_unix = 0.0
            current.attempts = max(0, current.attempts - 1)
            self._write_lease(current)
            return True

    def requeue(self, lease: Lease, worker_id: str, error: dict) -> str:
        """Requeue a lease whose processing raised; returns the resulting state.

        Retries back off exponentially (``backoff_seconds * 2**(attempts-1)``);
        once ``max_attempts`` claims have been burned the lease is marked
        ``failed`` and its unfinished cells get structured failure rows in the
        shared store.
        """
        params = self.queue_params()
        with self._queue_locked():
            current = self._read_lease(lease.lease_id)
            if current is None or current.owner != worker_id or current.state != "running":
                return current.state if current is not None else "gone"
            current.errors = (current.errors or []) + [error]
            if current.attempts >= params["max_attempts"]:
                self._finalise_failure(current)
                return "failed"
            current.state = "pending"
            current.owner = None
            current.deadline_unix = 0.0
            current.not_before_unix = time.time() + params["backoff_seconds"] * (
                2 ** (current.attempts - 1)
            )
            self._write_lease(current)
            return "pending"

    def _finalise_failure(self, lease: Lease) -> None:
        """Write failure rows for the lease's unfinished cells, then mark it failed.

        Runs under the queue lock; the store has its own inter-process lock, and
        the two nest in a fixed order (queue → store) everywhere, so there is no
        deadlock ordering hazard.  Rows land *before* the state flip so an
        observer seeing a terminal queue always finds every cell accounted for.
        """
        store = self.result_store()
        cells = self.cells_by_fingerprint()
        last_error = (lease.errors or [{}])[-1]
        for fingerprint in lease.fingerprints:
            cell = cells.get(fingerprint)
            if cell is None or fingerprint in store or store.get_failure(fingerprint):
                continue
            store.put_failure(
                cell,
                {
                    "type": last_error.get("type", "LeaseFailed"),
                    "message": last_error.get(
                        "message", f"lease {lease.lease_id} failed"
                    ),
                    "worker": last_error.get("worker"),
                    "attempts": lease.attempts,
                    "lease_id": lease.lease_id,
                    "unix_time": time.time(),
                },
            )
        lease.state = "failed"
        lease.owner = None
        lease.deadline_unix = 0.0
        self._write_lease(lease)


# ---------------------------------------------------------------------- the worker
class WorkerInterrupted(BaseException):
    """Raised by the worker's SIGTERM/SIGINT handler to unwind to the release path.

    Deliberately a ``BaseException``: the lease-processing machinery converts any
    ``Exception`` into a requeue-with-backoff, but a politely-killed worker must
    reach :meth:`CampaignService.release` (immediate, owner-fenced, refunded
    requeue) instead of burning an attempt.
    """


class _HeartbeatThread(threading.Thread):
    """Re-extends a lease deadline while the owning worker simulates."""

    def __init__(self, service: CampaignService, lease: Lease, worker_id: str, interval: float):
        super().__init__(daemon=True, name=f"lease-heartbeat-{lease.lease_id}")
        self._service = service
        self._lease = lease
        self._worker_id = worker_id
        self._interval = interval
        # Not named _stop: threading.Thread has a private _stop method.
        self._halt = threading.Event()
        self.lost = False

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            try:
                if not self._service.heartbeat(self._lease, self._worker_id):
                    self.lost = True
                    return
            except OSError:
                # A transient shared-filesystem error must not kill the worker;
                # the next beat retries (and the deadline has 3× slack).
                continue

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self._interval + 1.0)


def process_lease(
    service: CampaignService, lease: Lease, worker_id: str, store: ResultStore
) -> dict | None:
    """Simulate one lease's cells, appending results to the shared store.

    Returns ``None`` on full success, else the error payload of the first failing
    cell (the caller requeues the lease with it).  Cells already present in the
    store — finished by a previous attempt of this lease, or by a worker whose
    lease lapsed *after* it had stored some cells — are skipped, so retries only
    pay for what is actually missing.
    """
    params = service.queue_params()
    heartbeat = _HeartbeatThread(
        service, lease, worker_id, interval=max(0.05, params["lease_seconds"] / 3.0)
    )
    heartbeat.start()
    first_error: dict | None = None

    def land(cell: CampaignCell, entry: dict) -> None:
        """Checkpoint one finished cell immediately (or note its error)."""
        nonlocal first_error
        if "error" in entry:
            entry["error"]["worker"] = worker_id
            entry["error"]["attempts"] = lease.attempts
            if first_error is None:
                first_error = entry["error"]
            return
        telemetry = entry["telemetry"]
        telemetry["worker"] = worker_id
        telemetry["lease_id"] = lease.lease_id
        store.put(cell, SimulationResult.from_dict(entry["result"]), telemetry)
        faults = active_faults()
        if faults is not None:
            # Death right after a cell landed in the shared store: the takeover
            # worker must skip the stored cell and finish only what is missing.
            faults.die_if(WORKER_DIE_MID_LEASE)

    try:
        store.reload()
        cells = service.cells_by_fingerprint()
        todo = [
            cells[fp] for fp in lease.fingerprints if fp in cells and fp not in store
        ]
        # Same-workload batching through the shared trace cache: the first cell
        # captures the workload once and — with REPRO_TRACE_STORE pointed at the
        # service's traces/ dir — publishes it for the rest of the fleet.  Each
        # finished cell is appended to the shared store straight away, so a
        # worker dying mid-lease loses only its in-flight cell.
        if multi_replay_enabled() and len(todo) > 1:
            for group in _replay_groups(todo):
                try:
                    for cell, result, seconds, telemetry in _simulate_cell_group(group):
                        land(
                            cell,
                            {
                                "fingerprint": cell.fingerprint,
                                "result": result.to_dict(),
                                "seconds": seconds,
                                "telemetry": telemetry,
                            },
                        )
                except Exception:  # noqa: BLE001 — retry the group cell by cell
                    for cell in group:
                        if cell.fingerprint not in store:
                            land(cell, _simulate_one_entry(cell))
        else:
            for cell in todo:
                land(cell, _simulate_one_entry(cell))
    except Exception as error:  # noqa: BLE001 — lease-level failure, requeued below
        first_error = failure_payload(error, worker=worker_id, attempts=lease.attempts)
    finally:
        heartbeat.stop()
    return first_error


def work_loop(
    service: CampaignService,
    worker_id: str | None = None,
    poll_seconds: float = 0.5,
    once: bool = False,
    progress: bool = False,
    handle_signals: bool = False,
) -> dict:
    """Run a worker against the service until its queue is complete.

    The worker claims leases, simulates them (heartbeating throughout), and exits
    when every lease is terminal — *including* leases currently running elsewhere:
    as long as one is ``running`` this worker keeps polling, because that lease
    may lapse and need requeueing.  ``once=True`` processes at most one lease
    (test hook).  Returns ``{"processed": n, "requeued": n, "lost": n,
    "released": n}`` (plus ``"interrupted": <signal name>`` after a polite kill).

    With ``handle_signals=True`` (the CLI path; requires the main thread) SIGTERM
    and SIGINT unwind to a polite exit: the currently held lease is released back
    to the queue immediately — owner-fenced, attempt refunded — so a drained or
    redeployed worker never forces the fleet to wait out a full lease timeout.
    """
    worker_id = worker_id or default_worker_id()
    # Route this process's trace cache at the fleet-shared trace store so each
    # workload is captured once per fleet (an explicit env setting wins).
    os.environ.setdefault(TRACE_STORE_ENV_VAR, str(service.trace_dir))
    store = service.result_store()
    counts = {"processed": 0, "requeued": 0, "lost": 0, "released": 0}

    def _interrupt(signum, frame):  # noqa: ARG001 — signal-handler signature
        raise WorkerInterrupted(signal.Signals(signum).name)

    previous_handlers = {}
    if handle_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _interrupt)
    lease: Lease | None = None
    faults = active_faults()
    try:
        while True:
            lease = service.claim(worker_id)
            if lease is None:
                if once or service.queue_complete():
                    return counts
                time.sleep(poll_seconds)
                continue
            if faults is not None:
                faults.die_if(WORKER_DIE_AFTER_CLAIM)
            if progress:
                print(
                    f"[{worker_id}] claimed {lease.lease_id} "
                    f"({len(lease.fingerprints)} cells, attempt {lease.attempts})",
                    flush=True,
                )
            error = process_lease(service, lease, worker_id, store)
            if error is None:
                if faults is not None:
                    # Every cell is stored but the lease is still "running": the
                    # takeover claim finds nothing left to simulate.
                    faults.die_if(WORKER_DIE_BEFORE_COMPLETE)
                if service.complete(lease, worker_id):
                    counts["processed"] += 1
                else:
                    counts["lost"] += 1  # reassigned mid-run; results are stored anyway
            else:
                state = service.requeue(lease, worker_id, error)
                counts["requeued" if state == "pending" else "lost"] += 1
                if progress:
                    print(
                        f"[{worker_id}] {lease.lease_id} -> {state}: "
                        f"{error.get('type')}: {error.get('message')}",
                        flush=True,
                    )
            lease = None
            if once:
                return counts
    except WorkerInterrupted as stop:
        if lease is not None and service.release(lease, worker_id):
            counts["released"] += 1
        counts["interrupted"] = str(stop)
        if progress:
            released = " (lease released)" if counts["released"] else ""
            print(f"[{worker_id}] interrupted by {stop}{released}", flush=True)
        return counts
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)


# ---------------------------------------------------------------------- the server
def serve(
    service: CampaignService,
    campaign: Campaign,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    lease_width: int | None = None,
    poll_seconds: float = 0.5,
    progress: bool = True,
    timeout_seconds: float | None = None,
    stream=None,
) -> dict:
    """Submit ``campaign`` and stream progress until the fleet finishes the grid.

    The front-end of the distributed service: publishes the grid as leases,
    then polls the shared store/queue, emitting one progress line (plus the
    standard heartbeat-log events) per newly finished cell with its telemetry —
    wall-clock, µops/s, which worker ran it.  Returns a summary dict with
    ``results`` (fingerprint → record) and ``failed`` rows; raises
    :class:`CoordinationError` on ``timeout_seconds``.

    ``serve`` runs no simulations itself — start one or more ``repro-campaign
    work`` processes against the same directory (any machine sharing it).
    """
    service.submit(
        campaign,
        lease_seconds=lease_seconds,
        max_attempts=max_attempts,
        backoff_seconds=backoff_seconds,
        lease_width=lease_width,
    )
    cells = service.cells_by_fingerprint()
    reporter = ProgressReporter(
        total=len(cells), enabled=progress, label=campaign.name, stream=stream
    )
    seen: set[str] = set()
    store = service.result_store()
    started = time.monotonic()
    while True:
        store.reload()
        for fingerprint, cell in cells.items():
            if fingerprint in seen:
                continue
            if fingerprint in store:
                record = store.get_record(fingerprint)
                telemetry = record.get("telemetry") or {}
                seen.add(fingerprint)
                reporter.cell_done(
                    cell, telemetry.get("wall_seconds", 0.0), reused=False
                )
            elif store.get_failure(fingerprint) is not None:
                seen.add(fingerprint)
                reporter.cell_failed(cell, store.get_failure(fingerprint)["error"])
        if len(seen) == len(cells) or service.queue_complete():
            break
        if timeout_seconds is not None and time.monotonic() - started > timeout_seconds:
            raise CoordinationError(
                f"campaign incomplete after {timeout_seconds:.0f}s "
                f"({len(seen)}/{len(cells)} cells terminal)"
            )
        time.sleep(poll_seconds)
    reporter.finish()
    store.reload()
    results = {fp: store.get_record(fp) for fp in cells if fp in store}
    failed = {
        fp: store.get_failure(fp)
        for fp in cells
        if fp not in store and store.get_failure(fp) is not None
    }
    missing = [fp for fp in cells if fp not in results and fp not in failed]
    return {
        "campaign": campaign.name,
        "cells": len(cells),
        "results": results,
        "failed": failed,
        "missing": missing,
        "elapsed_seconds": time.monotonic() - started,
    }
