"""Persistent on-disk result store (JSON-lines, append-only with compaction).

Each line is one completed :class:`~repro.campaign.spec.CampaignCell`::

    {"fingerprint": "…", "config": "EOLE_4_64", "workload": "mcf",
     "max_uops": 12000, "warmup_uops": 3000, "saved_unix": 1706…,
     "result": {…SimulationResult.to_dict()…}}

Appending one line per finished simulation makes every record a checkpoint: an
interrupted campaign loses at most the in-flight cells, and a half-written trailing
line (the typical kill artefact) is skipped on load.  The newest record wins when a
fingerprint appears more than once (e.g. after :meth:`ResultStore.merge`), and
:meth:`ResultStore.compact` rewrites the file with the duplicates dropped.

The store is *content-addressed*: the fingerprint hashes the full configuration
dataclass, so results are invalidated implicitly whenever the simulated machine
changes, and :meth:`ResultStore.invalidate` handles the explicit cases (a simulator
bug-fix, a retired workload).

**Multi-process sharing.** One store file may be appended to by many processes at
once (sharded campaigns, the distributed coordinator's worker fleet).  Two
mechanisms keep that safe:

* every mutation — append, compaction, invalidate, merge — runs under an advisory
  ``fcntl`` lock on a ``<store>.lock`` sidecar, so a compaction can never interleave
  with another writer's append;
* any rewrite first *reloads* the on-disk rows, so lines appended by other
  processes since this instance's last load are folded in rather than silently
  discarded (the pre-fix behaviour lost finished cells whenever the
  ``REPRO_RESULT_STORE_MAX_MB`` auto-compaction fired on a shared store).

Besides result rows, the store accepts *failure rows* — ``{"error": {...}}`` instead
of ``"result"`` — recording cells whose simulation raised.  Failure rows never
satisfy :meth:`ResultStore.get`/``in`` (a resumed campaign retries them); they are
reported via :meth:`ResultStore.failures` and a newer success row supersedes them.

**Integrity.** Every row written since schema version 2 carries ``"v"`` (the row
schema version) and ``"crc"`` (CRC32 of the canonical sorted-JSON row with the
``crc`` key removed), so silent corruption — bit rot, a torn write that happens to
stay valid JSON — is detected on load, not just syntax errors.  Unstamped legacy
rows are still read (and upgraded in place by the next :meth:`ResultStore.compact`).
Rows that fail to parse or verify are *quarantined*, never a hard failure: the load
skips them, keeps their raw bytes for inspection (:meth:`ResultStore.quarantined`),
and compaction moves them to a ``<store>.quarantine`` sidecar before dropping them
from the data file.  Appends heal a torn trailing line (a crash mid-append) by
prefixing a newline, so one torn row never corrupts the rows appended after it.
``repro-campaign fsck`` audits all of this (see :mod:`repro.campaign.fsck`).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from contextlib import contextmanager
from pathlib import Path

try:  # POSIX-only; the store degrades to lock-free on other platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.campaign.spec import CampaignCell
from repro.faults import InjectedFault, active_faults
from repro.faults.sites import (
    STORE_APPEND_CORRUPT,
    STORE_APPEND_TORN,
    STORE_REWRITE_CRASH,
)
from repro.pipeline.stats import SimulationResult

#: Environment variable naming the default persistent store (opt-in).
STORE_ENV_VAR = "REPRO_RESULT_STORE"

#: Row schema version stamped into every written row (``"v"``).  Version 2 added
#: the per-row CRC; rows without ``v``/``crc`` are read as version-1 legacy rows.
ROW_VERSION = 2


def row_crc(record: dict) -> int:
    """CRC32 of the canonical sorted-JSON encoding of ``record`` minus its ``crc``.

    The canonicalisation is exactly the line encoding (``json.dumps(...,
    sort_keys=True)``), so a row round-trips: the CRC computed from the parsed dict
    equals the CRC computed when the line was written.
    """
    sans_crc = {key: value for key, value in record.items() if key != "crc"}
    return zlib.crc32(json.dumps(sans_crc, sort_keys=True).encode("utf-8"))


def stamp_row(record: dict) -> dict:
    """Stamp ``record`` (in place) with the schema version and its CRC."""
    record["v"] = ROW_VERSION
    record.pop("crc", None)
    record["crc"] = row_crc(record)
    return record

#: Environment variable: size cap, in megabytes, above which the backing file is
#: automatically compacted after an append (superseded/corrupt rows dropped; oldest
#: rows evicted if the live records alone still exceed the cap).
MAX_MB_ENV_VAR = "REPRO_RESULT_STORE_MAX_MB"


def default_max_bytes() -> int | None:
    """The ``REPRO_RESULT_STORE_MAX_MB`` cap in bytes, or ``None`` when unset."""
    raw = os.environ.get(MAX_MB_ENV_VAR)
    if not raw:
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        return None
    if megabytes <= 0:
        return None
    return int(megabytes * 1024 * 1024)


class ResultStore:
    """A persistent map from cell fingerprint to :class:`SimulationResult`."""

    def __init__(self, path: str | os.PathLike, max_bytes: int | None = None) -> None:
        self.path = Path(path)
        self.max_bytes = max_bytes if max_bytes is not None else default_max_bytes()
        self._records: dict[str, dict] = {}
        self._failures: dict[str, dict] = {}
        self._skipped_lines = 0
        self._superseded_lines = 0
        self._unstamped_lines = 0
        self._quarantined: list[dict] = []
        self._lock_depth = 0
        self._load()

    # ------------------------------------------------------------------ locking
    @contextmanager
    def _locked(self):
        """Hold the advisory inter-process lock (reentrant within this instance).

        The lock lives on a ``<store>.lock`` sidecar rather than the data file
        itself because rewrites *replace* the data file's inode — a lock taken on
        the old inode would silently stop excluding writers that open the new one.
        """
        if self._lock_depth > 0 or fcntl is None:
            self._lock_depth += 1
            try:
                yield
            finally:
                self._lock_depth -= 1
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = self.path.with_suffix(self.path.suffix + ".lock")
        with lock_path.open("a+", encoding="utf-8") as lock_file:
            fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
            self._lock_depth = 1
            try:
                yield
            finally:
                self._lock_depth = 0
                # flock drops with the file handle on context exit.

    # ------------------------------------------------------------------ loading
    def _ingest_row(self, record: dict) -> None:
        fingerprint = record["fingerprint"]
        if fingerprint in self._records or fingerprint in self._failures:
            # The newer row wins; the older one is dead weight on disk
            # until the next compaction.
            self._superseded_lines += 1
        self._records.pop(fingerprint, None)
        self._failures.pop(fingerprint, None)
        if "result" in record:
            self._records[fingerprint] = record
        else:
            self._failures[fingerprint] = record

    def _quarantine_line(self, line_no: int, raw: str, reason: str) -> None:
        """Set a bad line aside in memory (never a hard parse failure).

        The raw bytes are kept so :meth:`compact` (and ``fsck --repair``) can move
        them to the ``<store>.quarantine`` sidecar instead of silently destroying
        whatever data survives in them.
        """
        self._skipped_lines += 1
        self._quarantined.append({"line": line_no, "reason": reason, "raw": raw})

    def _load(self) -> None:
        self._records.clear()
        self._failures.clear()
        self._skipped_lines = 0
        self._superseded_lines = 0
        self._unstamped_lines = 0
        self._quarantined = []
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    record["fingerprint"]  # noqa: B018 — validate presence
                    if "error" not in record:
                        record["result"]  # noqa: B018 — validate presence
                except (json.JSONDecodeError, KeyError, TypeError):
                    self._quarantine_line(line_no, line, "parse")
                    continue
                if "crc" in record:
                    if not isinstance(record.get("v"), int) or record["v"] > ROW_VERSION:
                        self._quarantine_line(line_no, line, "version")
                        continue
                    if record["crc"] != row_crc(record):
                        self._quarantine_line(line_no, line, "crc")
                        continue
                else:
                    self._unstamped_lines += 1  # pre-CRC legacy row: accepted as-is
                self._ingest_row(record)

    def reload(self) -> None:
        """Re-read the backing file (e.g. after another process appended to it)."""
        self._load()

    # ------------------------------------------------------------------ querying
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        """True for *result* rows only — failure rows must not mask a retry."""
        return fingerprint in self._records

    @property
    def skipped_lines(self) -> int:
        """Corrupt/truncated lines ignored (quarantined) by the last load."""
        return self._skipped_lines

    @property
    def superseded_lines(self) -> int:
        """Duplicate-fingerprint rows shadowed by newer ones since the last load."""
        return self._superseded_lines

    @property
    def unstamped_lines(self) -> int:
        """Legacy (pre-CRC) rows read by the last load; upgraded on compaction."""
        return self._unstamped_lines

    def quarantined(self) -> list[dict]:
        """The bad lines set aside by the last load: ``{"line", "reason", "raw"}``.

        Reasons: ``parse`` (not JSON / missing fields — the torn-append artefact),
        ``crc`` (stamped row whose checksum does not match — silent corruption),
        ``version`` (row from a future schema this reader cannot verify).
        """
        return list(self._quarantined)

    def size_bytes(self) -> int:
        """Current size of the backing file in bytes (0 when it does not exist)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def get(self, fingerprint: str) -> SimulationResult | None:
        """The stored result for ``fingerprint``, or ``None``."""
        record = self._records.get(fingerprint)
        if record is None:
            return None
        return SimulationResult.from_dict(record["result"])

    def get_record(self, fingerprint: str) -> dict | None:
        """The raw stored record (metadata + result dict), or ``None``."""
        return self._records.get(fingerprint)

    def records(self) -> list[dict]:
        """All result records, in insertion order (failure rows excluded)."""
        return list(self._records.values())

    def failures(self) -> list[dict]:
        """All failure rows, in insertion order (see :meth:`put_failure`)."""
        return list(self._failures.values())

    def get_failure(self, fingerprint: str) -> dict | None:
        """The failure row for ``fingerprint``, or ``None``."""
        return self._failures.get(fingerprint)

    def fingerprints(self) -> set[str]:
        """The set of stored result fingerprints."""
        return set(self._records)

    # ------------------------------------------------------------------ writing
    def put(
        self,
        cell: CampaignCell,
        result: SimulationResult,
        telemetry: dict | None = None,
    ) -> dict:
        """Persist ``result`` for ``cell`` (append + flush: an atomic-enough checkpoint).

        ``telemetry`` is the optional per-cell execution row (wall-clock,
        µops/s, trace-cache deltas — see :func:`repro.obs.telemetry.cell_telemetry`);
        it is stored alongside, never inside, the result dict.
        """
        record = {
            "fingerprint": cell.fingerprint,
            "config": cell.config.name,
            "workload": cell.workload_name,
            "max_uops": cell.max_uops,
            "warmup_uops": cell.warmup_uops,
            "saved_unix": time.time(),
            "result": result.to_dict(),
        }
        if telemetry is not None:
            record["telemetry"] = telemetry
        stamp_row(record)
        self._ingest_row(record)
        self._append(record)
        return record

    def put_failure(self, cell: CampaignCell, error: dict) -> dict:
        """Persist a structured *failure* row for ``cell`` (simulation raised).

        ``error`` is a JSON-serialisable dict — by convention ``{"type", "message",
        "worker", "attempts", ...}`` (see
        :func:`repro.campaign.executor.failure_payload`).  Failure rows are visible
        via :meth:`failures`/:meth:`get_failure` but never via :meth:`get`/``in``,
        so a resumed campaign retries the cell; a later success row supersedes the
        failure automatically.
        """
        record = {
            "fingerprint": cell.fingerprint,
            "config": cell.config.name,
            "workload": cell.workload_name,
            "max_uops": cell.max_uops,
            "warmup_uops": cell.warmup_uops,
            "saved_unix": time.time(),
            "error": error,
        }
        stamp_row(record)
        self._ingest_row(record)
        self._append(record)
        return record

    def _torn_tail(self) -> bool:
        """True when the backing file ends mid-line (a crash tore the last append)."""
        try:
            with self.path.open("rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def _append(self, record: dict) -> None:
        with self._locked():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Heal a torn trailing line (crash mid-append) by starting this row on
            # a fresh line: the torn fragment stays quarantinable on its own line
            # instead of swallowing (and corrupting) the row written after it.
            prefix = "\n" if self._torn_tail() else ""
            line = json.dumps(record, sort_keys=True)
            faults = active_faults()
            with self.path.open("a", encoding="utf-8") as handle:
                if faults is not None and faults.fires(STORE_APPEND_TORN) is not None:
                    handle.write(prefix + line[: max(1, len(line) // 2)])
                    handle.flush()
                    raise InjectedFault(f"injected fault at {STORE_APPEND_TORN}")
                if faults is not None and faults.fires(STORE_APPEND_CORRUPT) is not None:
                    # Silent bit rot: garble the middle of the row but keep it one
                    # line — only the CRC (or a JSON error) catches it on load.
                    middle = len(line) // 2
                    line = line[:middle] + "#CORRUPT#" + line[middle + 9 :]
                handle.write(prefix + line + "\n")
                handle.flush()
            if self.max_bytes is not None and self.size_bytes() > self.max_bytes:
                # Size-cap policy: compacting drops superseded/invalidated rows
                # first; only if the live records alone exceed the cap are oldest
                # rows evicted.  The eviction target is 80% of the cap, so a store
                # sitting at its limit does not rewrite the whole file on every
                # append.  The lock is already held, so no other process can
                # append between this append and the compaction rewrite.
                self.compact(max(1, self.max_bytes * 4 // 5))

    def _all_rows(self):
        """Result rows then failure rows (rewrite order; load order-independent)."""
        yield from self._records.values()
        yield from self._failures.values()

    def _rewrite(self) -> None:
        """Atomically replace the backing file with the in-memory rows.

        Callers must hold the lock *and* have reloaded the on-disk state first
        (:meth:`_load`): a rewrite from a stale snapshot silently discards rows
        appended by other processes since this instance last read the file.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle_fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=f".{self.path.name}-", suffix=".tmp"
        )
        faults = active_faults()
        try:
            with os.fdopen(handle_fd, "w", encoding="utf-8") as handle:
                for record in self._all_rows():
                    if "crc" not in record:
                        stamp_row(record)  # rewrite upgrades legacy rows in place
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            if faults is not None:
                # Simulated SIGKILL between mkstemp and rename: no cleanup runs,
                # the data file survives untouched, the tmp orphan stays for fsck.
                faults.crash_if(STORE_REWRITE_CRASH)
            os.replace(tmp_name, self.path)
        except InjectedFault:
            raise
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._skipped_lines = 0
        self._superseded_lines = 0
        self._unstamped_lines = 0
        self._quarantined = []

    def compact(self, max_bytes: int | None = None) -> dict:
        """Rewrite the file dropping superseded/corrupt rows; optionally cap its size.

        With ``max_bytes`` (or the store's own cap), oldest records — by their
        ``saved_unix`` stamp — are evicted until the live rows fit the budget.
        Returns a summary dict: rows dropped by kind and the before/after sizes.

        Runs under the inter-process lock and re-reads the backing file first, so
        rows appended by other processes since this instance's last load survive
        the rewrite.
        """
        with self._locked():
            self._load()
            before = self.size_bytes()
            superseded = self._superseded_lines
            corrupt = self._skipped_lines
            self._spill_quarantine()
            budget = max_bytes if max_bytes is not None else self.max_bytes
            evicted = 0
            if budget is not None:
                lines = {
                    record["fingerprint"]: len(json.dumps(record, sort_keys=True)) + 1
                    for record in self._all_rows()
                }
                total = sum(lines.values())
                if total > budget:
                    oldest_first = sorted(
                        self._records.values(),
                        key=lambda record: record.get("saved_unix", 0.0),
                    )
                    for record in oldest_first:
                        if total <= budget:
                            break
                        fingerprint = record["fingerprint"]
                        total -= lines[fingerprint]
                        del self._records[fingerprint]
                        evicted += 1
            self._rewrite()
            return {
                "superseded_dropped": superseded,
                "corrupt_dropped": corrupt,
                "evicted": evicted,
                "bytes_before": before,
                "bytes_after": self.size_bytes(),
                "records": len(self._records),
            }

    @property
    def quarantine_path(self) -> Path:
        """The sidecar file holding rows dropped from the data file by compaction."""
        return self.path.with_suffix(self.path.suffix + ".quarantine")

    def _spill_quarantine(self) -> None:
        """Append the currently quarantined raw lines to the sidecar (best effort).

        Called with the lock held, right before a rewrite drops the bad lines from
        the data file: whatever data survives in them is preserved for post-mortem
        instead of silently destroyed.
        """
        if not self._quarantined:
            return
        try:
            with self.quarantine_path.open("a", encoding="utf-8") as handle:
                for entry in self._quarantined:
                    handle.write(
                        json.dumps(
                            {
                                "quarantined_unix": time.time(),
                                "line": entry["line"],
                                "reason": entry["reason"],
                                "raw": entry["raw"],
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
        except OSError:
            pass  # quarantine is forensic, never worth failing a compaction over

    # ------------------------------------------------------------------ maintenance
    def merge(self, other: "ResultStore | str | os.PathLike") -> int:
        """Fold another store's records into this one; returns the number adopted.

        Records whose fingerprint is already present locally are kept (ours wins —
        merge is for adopting *missing* cells, e.g. from a co-worker's store file).
        """
        if not isinstance(other, ResultStore):
            other = ResultStore(other)
        adopted = 0
        with self._locked():
            self._load()
            for record in other.records():
                if record["fingerprint"] not in self._records:
                    self._records[record["fingerprint"]] = record
                    self._append(record)
                    adopted += 1
        return adopted

    def invalidate(
        self,
        config: str | None = None,
        workload: str | None = None,
        fingerprints: set[str] | None = None,
    ) -> int:
        """Drop records matching any given filter; returns the number removed.

        With no filters, every record is dropped (a full reset).  The backing file is
        rewritten in place (under the inter-process lock, after a reload — rows
        appended by other processes survive unless they too match a filter).
        """
        def doomed(record: dict) -> bool:
            if fingerprints is not None and record["fingerprint"] in fingerprints:
                return True
            if config is not None and record["config"] == config:
                return True
            if workload is not None and record["workload"] == workload:
                return True
            return config is None and workload is None and fingerprints is None

        with self._locked():
            self._load()
            self._spill_quarantine()
            removed = [fp for fp, record in self._records.items() if doomed(record)]
            for fingerprint in removed:
                del self._records[fingerprint]
            dropped_failures = [
                fp for fp, record in self._failures.items() if doomed(record)
            ]
            for fingerprint in dropped_failures:
                del self._failures[fingerprint]
            self._rewrite()
        return len(removed)

    # ------------------------------------------------------------------ reporting
    def summary(self) -> dict:
        """Aggregate view used by ``repro.campaign status``: counts by config/workload."""
        by_config: dict[str, int] = {}
        by_workload: dict[str, int] = {}
        for record in self._records.values():
            by_config[record["config"]] = by_config.get(record["config"], 0) + 1
            by_workload[record["workload"]] = by_workload.get(record["workload"], 0) + 1
        return {
            "path": str(self.path),
            "records": len(self._records),
            "failures": len(self._failures),
            "skipped_lines": self._skipped_lines,
            "superseded_lines": self._superseded_lines,
            "unstamped_lines": self._unstamped_lines,
            "size_bytes": self.size_bytes(),
            "configs": by_config,
            "workloads": by_workload,
        }


# ---------------------------------------------------------------- default store (env)
_default_store: ResultStore | None = None
_default_store_path: str | None = None


def default_store() -> ResultStore | None:
    """The process-wide store named by ``REPRO_RESULT_STORE``, or ``None`` if unset.

    The instance is cached per path, so the library layers
    (:func:`repro.analysis.runner.run_workload` and friends) share one in-memory index
    per process; re-pointing the environment variable swaps the store.
    """
    global _default_store, _default_store_path
    path = os.environ.get(STORE_ENV_VAR)
    if not path:
        _default_store = None
        _default_store_path = None
        return None
    if _default_store is None or _default_store_path != path:
        _default_store = ResultStore(path)
        _default_store_path = path
    return _default_store
