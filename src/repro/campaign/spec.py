"""Campaign specifications: (configuration × workload × run-length) grids.

A :class:`Campaign` names the full cartesian grid that one study needs — every figure
of the paper is such a grid — and expands it into :class:`CampaignCell`\\ s, the unit of
work of the executor (:mod:`repro.campaign.executor`) and the unit of persistence of
the result store (:mod:`repro.campaign.store`).

Workload selections follow the SPEC-harness convention of *named sets*
(:data:`WORKLOAD_SETS`): ``all`` (the 19-benchmark suite), ``int``/``fp`` (the Table 3
categories), ``subset`` (the fast representative six) and ``bench`` (the eight-workload
subset the benchmark harness defaults to).  Arbitrary comma-separated workload names
are accepted wherever a set name is.

Every cell carries a *fingerprint*: a SHA-256 digest over the complete configuration
dataclass, the workload name and the run lengths.  Two cells share a fingerprint iff
re-running one would reproduce the other, so the fingerprint is the cache/store key —
changing any machine parameter (not just the configuration's display name) invalidates
the stored result automatically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from functools import cached_property

from repro.errors import ConfigurationError
from repro.pipeline.config import NAMED_CONFIGS, PipelineConfig, named_config
from repro.workloads.suite import FAST_SUBSET, SUITE_ORDER, all_workloads

#: The eight-workload subset exercised by the benchmark harness (``conftest.py``):
#: strong-VP, EE-friendly, IQ-hungry, offload-heavy, low-coverage and memory-bound
#: behaviours are all present.
BENCH_SUBSET: tuple[str, ...] = (
    "wupwise",
    "applu",
    "bzip2",
    "crafty",
    "hmmer",
    "namd",
    "gcc",
    "milc",
)


def _category_names(category: str) -> tuple[str, ...]:
    return tuple(wl.name for wl in all_workloads() if wl.spec.category == category)


#: SPEC-style named workload sets accepted by :func:`resolve_workload_names`.
WORKLOAD_SETS: dict[str, tuple[str, ...]] = {
    "all": SUITE_ORDER,
    "int": _category_names("INT"),
    "fp": _category_names("FP"),
    "subset": FAST_SUBSET,
    "bench": BENCH_SUBSET,
}


def resolve_workload_names(selector: str) -> tuple[str, ...]:
    """Expand ``selector`` — a named set or comma-separated workload names.

    ``"all"`` → the full suite; ``"int"``/``"fp"`` → Table 3 categories; ``"subset"``
    → :data:`~repro.workloads.suite.FAST_SUBSET`; ``"bench"`` → :data:`BENCH_SUBSET`;
    anything else is split on commas and validated against the suite.
    """
    selector = selector.strip()
    if selector.lower() in WORKLOAD_SETS:
        return WORKLOAD_SETS[selector.lower()]
    names = tuple(part.strip() for part in selector.split(",") if part.strip())
    if not names:
        raise ConfigurationError(f"empty workload selector {selector!r}")
    unknown = [name for name in names if name not in SUITE_ORDER]
    if unknown:
        raise ConfigurationError(
            f"unknown workloads {unknown}; known sets: {sorted(WORKLOAD_SETS)}, "
            f"known workloads: {list(SUITE_ORDER)}"
        )
    return names


def resolve_config_names(selector: str) -> tuple[str, ...]:
    """Split a comma-separated list of named configurations (validated lazily)."""
    names = tuple(part.strip() for part in selector.split(",") if part.strip())
    if not names:
        raise ConfigurationError(f"empty configuration selector {selector!r}")
    return names


def config_fingerprint_payload(config: PipelineConfig) -> str:
    """Canonical JSON of every field of ``config`` (enums stringified, keys sorted)."""
    return json.dumps(asdict(config), sort_keys=True, default=str)


def derive_seed(base_seed: int, config_name: str, workload_name: str) -> int:
    """A deterministic 31-bit per-cell seed mixed from the campaign seed and cell id."""
    payload = f"{base_seed}/{config_name}/{workload_name}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:4], "big") & 0x7FFFFFFF


@dataclass(frozen=True)
class CampaignCell:
    """One unit of work: simulate ``workload_name`` on ``config`` for the given window."""

    config: PipelineConfig
    workload_name: str
    max_uops: int
    warmup_uops: int

    @property
    def key(self) -> tuple[str, str, int, int, int]:
        """In-memory cache key (configuration name, workload, lengths, predictor seed).

        The seed is part of the key because the campaign engine itself derives per-cell
        seeds (``Campaign(seed=...)``) without renaming the configuration — a seeded and
        an unseeded run of the same grid must not share cache entries.
        """
        return (
            self.config.name,
            self.workload_name,
            self.max_uops,
            self.warmup_uops,
            self.config.predictor_seed,
        )

    @cached_property
    def fingerprint(self) -> str:
        """SHA-256 over the full configuration + workload + lengths (the store key)."""
        payload = json.dumps(
            {
                "config": json.loads(config_fingerprint_payload(self.config)),
                "workload": self.workload_name,
                "max_uops": self.max_uops,
                "warmup_uops": self.warmup_uops,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        """Short human-readable cell id, e.g. ``EOLE_4_64/mcf``."""
        return f"{self.config.name}/{self.workload_name}"


@dataclass
class Campaign:
    """A (configurations × workloads) grid simulated at fixed run lengths.

    ``seed`` is optional: when ``None`` (the default) every cell runs with its
    configuration's own ``predictor_seed``, which makes campaign results bit-identical
    to the serial :func:`repro.analysis.runner.run_suite` path.  When set, each cell
    gets a deterministic per-run seed mixed from the campaign seed and the cell
    identity (:func:`derive_seed`), so seed-sensitivity studies shard reproducibly
    across any number of workers.
    """

    name: str
    configs: tuple[PipelineConfig, ...]
    workload_names: tuple[str, ...]
    max_uops: int
    warmup_uops: int
    seed: int | None = None
    _cells: list[CampaignCell] = field(default=None, repr=False, compare=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.configs:
            raise ConfigurationError(f"campaign {self.name!r} has no configurations")
        if not self.workload_names:
            raise ConfigurationError(f"campaign {self.name!r} has no workloads")
        unknown = [name for name in self.workload_names if name not in SUITE_ORDER]
        if unknown:
            raise ConfigurationError(f"campaign {self.name!r}: unknown workloads {unknown}")
        config_names = [config.name for config in self.configs]
        if len(set(config_names)) != len(config_names):
            raise ConfigurationError(
                f"campaign {self.name!r}: duplicate configuration names {config_names}"
            )
        if len(set(self.workload_names)) != len(self.workload_names):
            raise ConfigurationError(
                f"campaign {self.name!r}: duplicate workloads {list(self.workload_names)}"
            )
        if self.max_uops <= self.warmup_uops:
            raise ConfigurationError(
                f"campaign {self.name!r}: max_uops ({self.max_uops}) must exceed "
                f"warmup_uops ({self.warmup_uops})"
            )

    @classmethod
    def from_names(
        cls,
        config_names: tuple[str, ...] | list[str] | str,
        workload_selector: str = "all",
        max_uops: int = 12000,
        warmup_uops: int = 3000,
        seed: int | None = None,
        name: str = "campaign",
    ) -> "Campaign":
        """Build a campaign from named configurations and a workload selector."""
        if isinstance(config_names, str):
            config_names = resolve_config_names(config_names)
        configs = tuple(named_config(cfg) for cfg in config_names)
        return cls(
            name=name,
            configs=configs,
            workload_names=resolve_workload_names(workload_selector)
            if isinstance(workload_selector, str)
            else tuple(workload_selector),
            max_uops=max_uops,
            warmup_uops=warmup_uops,
            seed=seed,
        )

    def _cell_config(self, config: PipelineConfig, workload_name: str) -> PipelineConfig:
        if self.seed is None:
            return config
        return config.derive(
            predictor_seed=derive_seed(self.seed, config.name, workload_name)
        )

    def to_spec_dict(self) -> dict:
        """A JSON-serialisable grid spec for the distributed coordinator.

        Only *named* configurations round-trip (the worker fleet rebuilds each
        config from the registry by name — shipping arbitrary dataclasses would
        need a config codec and loses the registry's self-documenting labels), so
        a campaign built from custom :class:`PipelineConfig` objects is rejected.
        Seeded campaigns serialise the base configs plus the seed; every worker
        re-derives identical per-cell seeds (:func:`derive_seed`).
        """
        for config in self.configs:
            try:
                registered = named_config(config.name)
            except ConfigurationError:
                registered = None
            if registered != config:
                raise ConfigurationError(
                    f"campaign {self.name!r}: config {config.name!r} is not a named "
                    f"configuration; the distributed service ships grids by config "
                    f"name (known: {sorted(NAMED_CONFIGS)})"
                )
        return {
            "name": self.name,
            "configs": [config.name for config in self.configs],
            "workloads": list(self.workload_names),
            "max_uops": self.max_uops,
            "warmup_uops": self.warmup_uops,
            "seed": self.seed,
        }

    @classmethod
    def from_spec_dict(cls, spec: dict) -> "Campaign":
        """Rebuild a grid submitted with :meth:`to_spec_dict` (the worker side)."""
        return cls.from_names(
            config_names=tuple(spec["configs"]),
            workload_selector=tuple(spec["workloads"]),
            max_uops=spec["max_uops"],
            warmup_uops=spec["warmup_uops"],
            seed=spec.get("seed"),
            name=spec.get("name", "campaign"),
        )

    def cells(self) -> list[CampaignCell]:
        """The expanded grid, row-major (configuration outer, workload inner)."""
        if self._cells is None:
            self._cells = [
                CampaignCell(
                    config=self._cell_config(config, workload_name),
                    workload_name=workload_name,
                    max_uops=self.max_uops,
                    warmup_uops=self.warmup_uops,
                )
                for config in self.configs
                for workload_name in self.workload_names
            ]
        return list(self._cells)

    def __len__(self) -> int:
        return len(self.configs) * len(self.workload_names)
