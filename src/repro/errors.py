"""Exception hierarchy for the EOLE reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that callers can
catch library failures with a single ``except`` clause while still being able to
distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ProgramError(ReproError):
    """A workload program is malformed (bad label, bad register, bad operand count)."""


class EmulationError(ReproError):
    """The architectural emulator hit an unrecoverable condition (e.g. runaway loop)."""


class ConfigurationError(ReproError):
    """A pipeline or predictor configuration is inconsistent or out of range."""


class SimulationError(ReproError):
    """The timing simulator reached an inconsistent internal state."""
