"""Experiment harness: runners, metrics, per-figure experiments and report formatting."""

from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.metrics import arithmetic_mean, geometric_mean, relative_change, speedups
from repro.analysis.predictor_eval import PredictorEvaluation, evaluate_predictor
from repro.analysis.report import ExperimentResult, ExperimentSeries, format_table
from repro.analysis.runner import (
    ResultCache,
    default_max_uops,
    default_suite_workers,
    default_warmup_uops,
    run_grid,
    run_suite,
    run_workload,
    shared_cache,
    suite_ipcs,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSeries",
    "PredictorEvaluation",
    "ResultCache",
    "arithmetic_mean",
    "default_max_uops",
    "default_suite_workers",
    "default_warmup_uops",
    "evaluate_predictor",
    "format_table",
    "geometric_mean",
    "relative_change",
    "run_grid",
    "run_suite",
    "run_workload",
    "shared_cache",
    "speedups",
    "suite_ipcs",
]
