"""Experiment runner: simulate (configuration × workload) grids with result caching.

Every figure of the paper compares several machine configurations over the same
workload suite, and several figures share configurations (``Baseline_VP_6_64`` is the
normalisation baseline of Figs. 7, 8, 12 and 13).  The module-level
:class:`ResultCache` avoids re-simulating identical (configuration, workload, length)
triples within one process, which keeps the full benchmark harness affordable.

Run lengths default to a scaled-down region of interest (the paper uses 50M warm-up +
100M instructions; see DESIGN.md §5 for why a few thousand µ-ops of these steady-state
kernels are representative).  They can be overridden globally through the
``REPRO_SIM_UOPS`` / ``REPRO_SIM_WARMUP`` environment variables or per call.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from dataclasses import dataclass

from repro.pipeline.config import PipelineConfig
from repro.pipeline.simulator import Simulator
from repro.pipeline.stats import SimulationResult
from repro.workloads.suite import Workload, all_workloads


def default_max_uops() -> int:
    """Per-run committed-µ-op budget (env ``REPRO_SIM_UOPS``, default 12000)."""
    return int(os.environ.get("REPRO_SIM_UOPS", "12000"))


def default_warmup_uops() -> int:
    """Warm-up µ-ops excluded from the measurement window (env ``REPRO_SIM_WARMUP``)."""
    return int(os.environ.get("REPRO_SIM_WARMUP", "3000"))


@dataclass(frozen=True)
class _CacheKey:
    config_name: str
    workload_name: str
    max_uops: int
    warmup_uops: int


class ResultCache:
    """In-process memoisation of simulation results."""

    def __init__(self) -> None:
        self._results: dict[_CacheKey, SimulationResult] = {}

    def get(self, key: _CacheKey) -> SimulationResult | None:
        return self._results.get(key)

    def put(self, key: _CacheKey, result: SimulationResult) -> None:
        self._results[key] = result

    def clear(self) -> None:
        self._results.clear()

    def __len__(self) -> int:
        return len(self._results)


#: Shared cache used by the experiment harness (clear with ``shared_cache.clear()``).
shared_cache = ResultCache()


def run_workload(
    config: PipelineConfig,
    workload: Workload,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
) -> SimulationResult:
    """Simulate ``workload`` on ``config`` (cached by configuration name and lengths)."""
    max_uops = max_uops if max_uops is not None else default_max_uops()
    warmup_uops = warmup_uops if warmup_uops is not None else default_warmup_uops()
    key = _CacheKey(config.name, workload.name, max_uops, warmup_uops)
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    simulator = Simulator(
        config,
        workload.program,
        max_uops=max_uops,
        warmup_uops=warmup_uops,
        arch_state=workload.make_state(),
        workload_name=workload.name,
    )
    result = simulator.run()
    if cache is not None:
        cache.put(key, result)
    return result


def run_suite(
    config: PipelineConfig,
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
) -> dict[str, SimulationResult]:
    """Simulate every workload on ``config``; returns results keyed by workload name."""
    selected = list(workloads) if workloads is not None else all_workloads()
    return {
        workload.name: run_workload(config, workload, max_uops, warmup_uops, cache)
        for workload in selected
    }


def suite_ipcs(results: dict[str, SimulationResult]) -> dict[str, float]:
    """Extract the per-workload IPCs from a suite result dictionary."""
    return {name: result.ipc for name, result in results.items()}
