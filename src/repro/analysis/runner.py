"""Experiment runner: simulate (configuration × workload) grids with result caching.

Every figure of the paper compares several machine configurations over the same
workload suite, and several figures share configurations (``Baseline_VP_6_64`` is the
normalisation baseline of Figs. 7, 8, 12 and 13).  Grid execution is routed through
the campaign engine (:mod:`repro.campaign`), which layers three reuse levels under a
single primitive:

1. the module-level :class:`ResultCache` memoises (configuration, workload, length)
   triples within one process, keeping the full benchmark harness affordable;
2. the opt-in persistent :class:`~repro.campaign.store.ResultStore` (env
   ``REPRO_RESULT_STORE``) carries results across processes and sessions;
3. anything left is simulated — serially by default, or sharded across worker
   processes when ``REPRO_CAMPAIGN_WORKERS`` (or an explicit ``workers=``) says so.

Run lengths default to a scaled-down region of interest (the paper uses 50M warm-up +
100M instructions; see DESIGN.md §5 for why a few thousand µ-ops of these steady-state
kernels are representative).  They can be overridden globally through the
``REPRO_SIM_UOPS`` / ``REPRO_SIM_WARMUP`` environment variables or per call.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable

from repro.campaign.executor import run_campaign, simulate_cell, simulate_cells
from repro.campaign.spec import Campaign, CampaignCell
from repro.campaign.store import ResultStore, default_store
from repro.pipeline.config import PipelineConfig
from repro.pipeline.multi_replay import multi_replay_enabled
from repro.pipeline.stats import SimulationResult
from repro.workloads.suite import SUITE_ORDER, Workload, all_workloads, workload


def default_max_uops() -> int:
    """Per-run committed-µ-op budget (env ``REPRO_SIM_UOPS``, default 12000)."""
    return int(os.environ.get("REPRO_SIM_UOPS", "12000"))


def default_warmup_uops() -> int:
    """Warm-up µ-ops excluded from the measurement window (env ``REPRO_SIM_WARMUP``)."""
    return int(os.environ.get("REPRO_SIM_WARMUP", "3000"))


def default_suite_workers() -> int:
    """Workers for library-level grid runs (env ``REPRO_CAMPAIGN_WORKERS``, default 1).

    Unlike the campaign CLI (which defaults to every core), the library layers stay
    serial unless explicitly told otherwise, so unit tests and small interactive runs
    never pay process-pool start-up costs.
    """
    return max(1, int(os.environ.get("REPRO_CAMPAIGN_WORKERS", "1")))


#: Environment variable: any value other than ``0``/empty makes library-level grid
#: runs print per-cell progress/ETA lines (the benchmark harness enables it so long
#: figure grids report cells-done/ETA on stderr).
PROGRESS_ENV_VAR = "REPRO_PROGRESS"


def default_progress() -> bool:
    """Whether grid runs report progress when the caller does not say (env)."""
    return os.environ.get(PROGRESS_ENV_VAR, "0") not in ("", "0")


class ResultCache:
    """In-process memoisation of simulation results.

    Keys are :attr:`~repro.campaign.spec.CampaignCell.key` tuples
    ``(config_name, workload_name, max_uops, warmup_uops, predictor_seed)``, which
    makes the cache directly pluggable into
    :func:`repro.campaign.executor.run_campaign`.
    """

    def __init__(self) -> None:
        self._results: dict[tuple, SimulationResult] = {}

    def get(self, key: tuple) -> SimulationResult | None:
        return self._results.get(key)

    def put(self, key: tuple, result: SimulationResult) -> None:
        self._results[key] = result

    def clear(self) -> None:
        self._results.clear()

    def __len__(self) -> int:
        return len(self._results)


#: Shared cache used by the experiment harness (clear with ``shared_cache.clear()``).
shared_cache = ResultCache()


def run_workload(
    config: PipelineConfig,
    workload: Workload,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
    store: ResultStore | None = None,
    trace=None,
    progress: bool | None = None,
) -> SimulationResult:
    """Simulate ``workload`` on ``config`` (cached by configuration name and lengths).

    Reuse order is cache → store → simulate; ``store=None`` falls back to the
    ``REPRO_RESULT_STORE`` default store when that variable is set.  Simulation
    replays the workload's committed stream from the shared trace cache
    (:mod:`repro.trace`); pass ``trace=`` to replay an explicit pre-captured trace
    instead.  An explicit trace bypasses the result cache and store entirely — their
    keys identify the *canonical* workload stream, which a caller-supplied trace
    need not match.

    ``progress=None`` defers to ``REPRO_PROGRESS``, exactly like :func:`run_grid`:
    a single-cell run (predictor_eval, the examples) then reports the same
    per-cell done/reused line a campaign grid would.
    """
    max_uops = max_uops if max_uops is not None else default_max_uops()
    warmup_uops = warmup_uops if warmup_uops is not None else default_warmup_uops()
    progress = progress if progress is not None else default_progress()
    cell = CampaignCell(
        config=config, workload_name=workload.name, max_uops=max_uops, warmup_uops=warmup_uops
    )
    if not progress:
        return _run_workload_cell(cell, workload, cache, store, trace)[0]
    from repro.campaign.progress import ProgressReporter

    reporter = ProgressReporter(total=1, enabled=True, label=cell.describe())
    reporter.cell_started(cell)
    started = time.perf_counter()
    result, reused = _run_workload_cell(cell, workload, cache, store, trace)
    reporter.cell_done(cell, time.perf_counter() - started, reused=reused)
    reporter.finish()
    return result


def _run_workload_cell(
    cell: CampaignCell,
    workload: Workload,
    cache: ResultCache | None,
    store: ResultStore | None,
    trace,
) -> tuple[SimulationResult, bool]:
    """The cache → store → simulate ladder behind :func:`run_workload`.

    Returns ``(result, reused)`` — ``reused`` mirrors the campaign reporter's
    notion (cache or store hit, no simulation run).
    """
    if trace is not None:
        return simulate_cell(cell, workload, trace=trace), False
    if cache is not None:
        cached = cache.get(cell.key)
        if cached is not None:
            return cached, True
    store = store if store is not None else default_store()
    if store is not None:
        stored = store.get(cell.fingerprint)
        if stored is not None:
            if cache is not None:
                cache.put(cell.key, stored)
            return stored, True
    result = simulate_cell(cell, workload)
    if store is not None:
        store.put(cell, result)
    if cache is not None:
        cache.put(cell.key, result)
    return result, False


def run_grid(
    configs: Iterable[PipelineConfig],
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
    store: ResultStore | None = None,
    workers: int | None = None,
    progress: bool | None = None,
    label: str | None = None,
) -> dict[str, dict[str, SimulationResult]]:
    """Simulate every (config, workload) pair; returns config name → workload → result.

    The whole grid is submitted to the campaign engine at once, so with ``workers > 1``
    the cells of *different* configurations shard across the pool together — the unit
    of parallelism is the cell, not the configuration row.

    ``progress=None`` defers to the ``REPRO_PROGRESS`` environment variable; when
    enabled, per-cell done-count/ETA lines are printed to stderr, labelled with
    ``label`` (e.g. the figure id the benchmark harness is regenerating).
    """
    configs = list(configs)
    selected = list(workloads) if workloads is not None else all_workloads()
    max_uops = max_uops if max_uops is not None else default_max_uops()
    warmup_uops = warmup_uops if warmup_uops is not None else default_warmup_uops()
    workers = workers if workers is not None else default_suite_workers()
    progress = progress if progress is not None else default_progress()

    # The campaign engine routes cells by workload *name* (they must survive a pickle
    # boundary), so it may only be used when every workload is the registry's own
    # instance — an ad-hoc Workload that merely shares a suite name must not be
    # silently replaced by the registry version.
    registry_members = [
        wl for wl in selected if wl.name in SUITE_ORDER and workload(wl.name) is wl
    ]
    if len(registry_members) == len(selected) and len(
        {wl.name for wl in selected}
    ) == len(selected):
        campaign = Campaign(
            name=label if label else "grid",
            configs=tuple(configs),
            workload_names=tuple(wl.name for wl in selected),
            max_uops=max_uops,
            warmup_uops=warmup_uops,
        )
        outcome = run_campaign(
            campaign, store=store, workers=workers, cache=cache, progress=progress
        )
        return outcome.by_config()
    # Ad-hoc workload objects outside the registered suite cannot cross a process
    # boundary by name — simulate them serially through the single-cell primitive,
    # or (REPRO_MULTI_REPLAY=1) collapse each workload's config row into one
    # multi-replay pass.
    if multi_replay_enabled() and len(configs) > 1:
        return _run_grid_multi(configs, selected, max_uops, warmup_uops, cache, store)
    return {
        config.name: {
            wl.name: run_workload(config, wl, max_uops, warmup_uops, cache, store)
            for wl in selected
        }
        for config in configs
    }


def _run_grid_multi(
    configs: list[PipelineConfig],
    selected: list[Workload],
    max_uops: int,
    warmup_uops: int,
    cache: ResultCache | None,
    store: ResultStore | None,
) -> dict[str, dict[str, SimulationResult]]:
    """The ad-hoc grid with each workload's config row as one multi-replay pass.

    Same cache → store → simulate ladder as :func:`run_workload`, applied per
    cell; only the cells that actually reach simulation share a pass (results
    are byte-identical either way, so a partially cached row stays consistent).
    """
    store = store if store is not None else default_store()
    results: dict[str, dict[str, SimulationResult]] = {
        config.name: {} for config in configs
    }
    for wl in selected:
        misses: list[tuple[PipelineConfig, CampaignCell]] = []
        for config in configs:
            cell = CampaignCell(
                config=config,
                workload_name=wl.name,
                max_uops=max_uops,
                warmup_uops=warmup_uops,
            )
            if cache is not None:
                cached = cache.get(cell.key)
                if cached is not None:
                    results[config.name][wl.name] = cached
                    continue
            if store is not None:
                stored = store.get(cell.fingerprint)
                if stored is not None:
                    if cache is not None:
                        cache.put(cell.key, stored)
                    results[config.name][wl.name] = stored
                    continue
            misses.append((config, cell))
        if not misses:
            continue
        row = (
            simulate_cells([cell for _, cell in misses], wl)
            if len(misses) > 1
            else [simulate_cell(misses[0][1], wl)]
        )
        for (config, cell), result in zip(misses, row):
            if store is not None:
                store.put(cell, result)
            if cache is not None:
                cache.put(cell.key, result)
            results[config.name][wl.name] = result
    return results


def run_suite(
    config: PipelineConfig,
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
    store: ResultStore | None = None,
    workers: int | None = None,
) -> dict[str, SimulationResult]:
    """Simulate every workload on ``config``; returns results keyed by workload name."""
    grid = run_grid(
        [config], workloads, max_uops, warmup_uops, cache, store, workers
    )
    return grid[config.name]


def suite_ipcs(results: dict[str, SimulationResult]) -> dict[str, float]:
    """Extract the per-workload IPCs from a suite result dictionary."""
    return {name: result.ipc for name, result in results.items()}
