"""Metric helpers shared by the experiment harness: speedups, means, coverage ratios."""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's cross-benchmark summary metric)."""
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average (used for coverage-style ratios)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def speedups(
    ipcs: Mapping[str, float], baseline_ipcs: Mapping[str, float]
) -> dict[str, float]:
    """Per-workload speedups of ``ipcs`` over ``baseline_ipcs`` (missing entries skipped)."""
    result: dict[str, float] = {}
    for name, ipc in ipcs.items():
        baseline = baseline_ipcs.get(name)
        if baseline:
            result[name] = ipc / baseline
    return result


def relative_change(value: float, reference: float) -> float:
    """Signed relative change ``(value - reference) / reference`` (0 when reference is 0)."""
    if reference == 0:
        return 0.0
    return (value - reference) / reference
