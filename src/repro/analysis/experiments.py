"""The per-figure / per-table experiment registry.

Each public function regenerates one artefact of the paper's evaluation (Section 5 and
Section 6) over the synthetic workload suite and returns an
:class:`~repro.analysis.report.ExperimentResult` that the benchmark harness prints and
EXPERIMENTS.md records.  The experiment ids match DESIGN.md §4.

Every figure is a (configuration × workload) grid, so each function submits its whole
grid — baseline and variants together — to the campaign engine via
:func:`~repro.analysis.runner.run_grid` in one shot.  With
``REPRO_CAMPAIGN_WORKERS > 1`` the cells shard across worker processes, and with
``REPRO_RESULT_STORE`` set, previously simulated cells are reloaded from disk instead
of re-simulated.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.report import ExperimentResult, ExperimentSeries
from repro.analysis.runner import ResultCache, run_grid, shared_cache
from repro.core.eole import EOLEVariant, eole_config
from repro.pipeline.config import (
    PipelineConfig,
    baseline_6_64,
    baseline_vp_4_64,
    baseline_vp_6_48,
    baseline_vp_6_64,
    eoe_4_64,
    eole_4_64,
    eole_4_64_banked,
    eole_6_48,
    eole_6_64,
    ole_4_64,
)
from repro.pipeline.stats import SimulationResult
from repro.vp.confidence import DETERMINISTIC_3BIT_VECTOR, PAPER_FPC_VECTOR
from repro.vp.hybrid import VTAGE2DStrideHybrid
from repro.vp.stride import TwoDeltaStridePredictor
from repro.vp.vtage import VTAGEPredictor
from repro.analysis.predictor_eval import evaluate_predictor
from repro.workloads.suite import Workload, all_workloads


def _suite(workloads: Iterable[Workload] | None) -> list[Workload]:
    return list(workloads) if workloads is not None else all_workloads()


def _speedup_series(
    label: str,
    results: dict[str, SimulationResult],
    baseline_results: dict[str, SimulationResult],
) -> ExperimentSeries:
    values = {
        name: results[name].ipc / baseline_results[name].ipc
        for name in results
        if baseline_results[name].ipc > 0
    }
    return ExperimentSeries(label=label, values=values)


def _comparison_figure(
    result: ExperimentResult,
    baseline_config: PipelineConfig,
    labelled_configs: tuple[tuple[str, PipelineConfig], ...],
    workloads: Iterable[Workload] | None,
    max_uops: int | None,
    warmup_uops: int | None,
    cache: ResultCache | None,
) -> ExperimentResult:
    """Run one grid (baseline + variants) and append one speedup series per variant."""
    selected = _suite(workloads)
    configs = [baseline_config] + [config for _, config in labelled_configs]
    grid = run_grid(
        configs, selected, max_uops, warmup_uops, cache, label=result.experiment_id
    )
    baseline = grid[baseline_config.name]
    for label, config in labelled_configs:
        result.series.append(_speedup_series(label, grid[config.name], baseline))
    return result


# --------------------------------------------------------------------------- Figure 2
def fig2_early_execution_share(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
    depths: tuple[int, ...] = (1, 2),
) -> ExperimentResult:
    """Fig. 2: fraction of committed µ-ops early-executed, for 1 and 2 ALU stages."""
    selected = _suite(workloads)
    result = ExperimentResult(
        experiment_id="fig2_early_exec_share",
        title="Proportion of committed µ-ops that can be early-executed",
        value_kind="ratio",
        notes="Paper: single ALU stage captures nearly all of the benefit (Fig. 2).",
    )
    configs = [
        eole_6_64().derive(
            name=f"EOLE_6_64_ee{depth}",
            eole=eole_config(variant=EOLEVariant.EOLE, ee_depth=depth),
        )
        for depth in depths
    ]
    grid = run_grid(
        configs, selected, max_uops, warmup_uops, cache, label=result.experiment_id
    )
    for depth, config in zip(depths, configs):
        runs = grid[config.name]
        result.series.append(
            ExperimentSeries(
                label=f"{depth} ALU stage{'s' if depth > 1 else ''}",
                values={name: run.stats.early_executed_ratio for name, run in runs.items()},
            )
        )
    return result


# --------------------------------------------------------------------------- Figure 4
def fig4_late_execution_share(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
) -> ExperimentResult:
    """Fig. 4: fraction of committed µ-ops late-executed (disjoint from Fig. 2)."""
    selected = _suite(workloads)
    config = eole_6_64()
    runs = run_grid(
        [config], selected, max_uops, warmup_uops, cache, label="fig4_late_exec_share"
    )[config.name]
    result = ExperimentResult(
        experiment_id="fig4_late_exec_share",
        title="Proportion of committed µ-ops that can be late-executed",
        value_kind="ratio",
        notes="Late-executable µ-ops that could also early-execute are not counted.",
    )
    result.series.append(
        ExperimentSeries(
            label="High-confidence branches",
            values={
                name: run.stats.late_resolved_branches / run.stats.committed_uops
                if run.stats.committed_uops
                else 0.0
                for name, run in runs.items()
            },
        )
    )
    result.series.append(
        ExperimentSeries(
            label="Value-predicted",
            values={
                name: run.stats.late_executed_alu / run.stats.committed_uops
                if run.stats.committed_uops
                else 0.0
                for name, run in runs.items()
            },
        )
    )
    result.series.append(
        ExperimentSeries(
            label="Total offload (EE+LE)",
            values={name: run.stats.offload_ratio for name, run in runs.items()},
        )
    )
    return result


# --------------------------------------------------------------------------- Table 3
def table3_baseline_ipc(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
) -> ExperimentResult:
    """Table 3: per-benchmark IPC of the 6-issue, 64-entry-IQ baseline (no VP)."""
    selected = _suite(workloads)
    config = baseline_6_64()
    runs = run_grid(
        [config], selected, max_uops, warmup_uops, cache, label="table3_baseline_ipc"
    )[config.name]
    result = ExperimentResult(
        experiment_id="table3_baseline_ipc",
        title="Baseline_6_64 IPC per workload",
        value_kind="ipc",
    )
    result.series.append(
        ExperimentSeries(label="Measured IPC", values={n: r.ipc for n, r in runs.items()})
    )
    result.series.append(
        ExperimentSeries(
            label="Paper IPC",
            values={
                workload.name: workload.spec.paper_ipc
                for workload in selected
                if workload.spec.paper_ipc is not None
            },
        )
    )
    return result


# --------------------------------------------------------------------------- Figure 6
def fig6_vp_speedup(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
) -> ExperimentResult:
    """Fig. 6: speedup of Baseline_VP_6_64 (VTAGE-2DStride) over Baseline_6_64."""
    result = ExperimentResult(
        experiment_id="fig6_vp_speedup",
        title="Speedup brought by Value Prediction (VTAGE-2DStride)",
        baseline_label="Baseline_6_64",
        value_kind="speedup",
        notes="Paper: speedups up to ~1.4x on the most predictable codes, no slowdowns.",
    )
    return _comparison_figure(
        result,
        baseline_6_64(),
        (("VTAGE-2D-Str", baseline_vp_6_64()),),
        workloads,
        max_uops,
        warmup_uops,
        cache,
    )


# --------------------------------------------------------------------------- Figure 7
def fig7_issue_width(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
) -> ExperimentResult:
    """Fig. 7: issue-width impact on EOLE vs the VP baseline (normalised to VP_6_64)."""
    result = ExperimentResult(
        experiment_id="fig7_issue_width",
        title="Performance vs issue width",
        baseline_label="Baseline_VP_6_64",
        value_kind="speedup",
        notes="Paper: EOLE_4_64 stays on par with Baseline_VP_6_64; Baseline_VP_4_64 loses up to ~12%.",
    )
    return _comparison_figure(
        result,
        baseline_vp_6_64(),
        (
            ("Baseline_VP_4_64", baseline_vp_4_64()),
            ("EOLE_4_64", eole_4_64()),
            ("EOLE_6_64", eole_6_64()),
        ),
        workloads,
        max_uops,
        warmup_uops,
        cache,
    )


# --------------------------------------------------------------------------- Figure 8
def fig8_iq_size(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
) -> ExperimentResult:
    """Fig. 8: IQ-size impact on EOLE vs the VP baseline (normalised to VP_6_64)."""
    result = ExperimentResult(
        experiment_id="fig8_iq_size",
        title="Performance vs instruction queue size",
        baseline_label="Baseline_VP_6_64",
        value_kind="speedup",
        notes="Paper: EOLE mitigates the loss of shrinking the IQ from 64 to 48 entries.",
    )
    return _comparison_figure(
        result,
        baseline_vp_6_64(),
        (
            ("Baseline_VP_6_48", baseline_vp_6_48()),
            ("EOLE_6_48", eole_6_48()),
            ("EOLE_6_64", eole_6_64()),
        ),
        workloads,
        max_uops,
        warmup_uops,
        cache,
    )


# --------------------------------------------------------------------------- Figure 10
def fig10_prf_banks(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
    bank_counts: tuple[int, ...] = (2, 4, 8),
) -> ExperimentResult:
    """Fig. 10: EOLE_4_64 with a banked PRF, normalised to the single-bank EOLE_4_64."""
    result = ExperimentResult(
        experiment_id="fig10_prf_banks",
        title="Impact of PRF banking on EOLE_4_64",
        baseline_label="EOLE_4_64 (1 bank)",
        value_kind="speedup",
        notes="Paper: 4 banks of 64 registers is a reasonable tradeoff (losses are marginal).",
    )
    labelled = tuple(
        (
            f"{banks} banks",
            eole_4_64_banked(
                banks=banks, levt_ports_per_bank=None, ee_write_ports_per_bank=None
            ).derive(name=f"EOLE_4_64_{banks}banks"),
        )
        for banks in bank_counts
    )
    return _comparison_figure(
        result, eole_4_64(), labelled, workloads, max_uops, warmup_uops, cache
    )


# --------------------------------------------------------------------------- Figure 11
def fig11_levt_ports(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
    port_counts: tuple[int, ...] = (2, 3, 4),
) -> ExperimentResult:
    """Fig. 11: limiting LE/VT read ports per bank on a 4-banked EOLE_4_64."""
    result = ExperimentResult(
        experiment_id="fig11_levt_ports",
        title="Impact of limited LE/VT read ports (4-bank PRF)",
        baseline_label="EOLE_4_64 (unconstrained ports)",
        value_kind="speedup",
        notes="Paper: 2 ports per bank are not enough; 4 ports per bank are near-neutral.",
    )
    labelled = tuple(
        (
            f"{ports}P/4B",
            eole_4_64_banked(banks=4, levt_ports_per_bank=ports).derive(
                name=f"EOLE_4_64_{ports}P_4B"
            ),
        )
        for ports in port_counts
    )
    return _comparison_figure(
        result, eole_4_64(), labelled, workloads, max_uops, warmup_uops, cache
    )


# --------------------------------------------------------------------------- Figure 12
def fig12_overall(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
) -> ExperimentResult:
    """Fig. 12: the realistic EOLE design point vs the VP baseline and the no-VP baseline."""
    result = ExperimentResult(
        experiment_id="fig12_overall",
        title="Overall comparison (normalised to Baseline_VP_6_64)",
        baseline_label="Baseline_VP_6_64",
        value_kind="speedup",
        notes="Paper: EOLE_4_64 with 4 banks / 4 LE-VT ports retains the VP speedup over Baseline_6_64.",
    )
    return _comparison_figure(
        result,
        baseline_vp_6_64(),
        (
            ("Baseline_6_64", baseline_6_64()),
            ("EOLE_4_64", eole_4_64()),
            ("EOLE_4_64_4ports_4banks", eole_4_64_banked(banks=4, levt_ports_per_bank=4)),
        ),
        workloads,
        max_uops,
        warmup_uops,
        cache,
    )


# --------------------------------------------------------------------------- Figure 13
def fig13_variants(
    workloads: Iterable[Workload] | None = None,
    max_uops: int | None = None,
    warmup_uops: int | None = None,
    cache: ResultCache | None = shared_cache,
) -> ExperimentResult:
    """Fig. 13: EOLE vs OLE (Late only) vs EOE (Early only), all 4-issue, banked PRF."""
    result = ExperimentResult(
        experiment_id="fig13_variants",
        title="Modularity of EOLE: Early-only and Late-only variants",
        baseline_label="Baseline_VP_6_64",
        value_kind="speedup",
        notes="Paper: removing Late Execution hurts more than removing Early Execution; "
        "all variants stay within ~5% of the 6-issue VP baseline.",
    )
    return _comparison_figure(
        result,
        baseline_vp_6_64(),
        (
            ("EOLE_4_64_4ports_4banks", eole_4_64_banked(banks=4, levt_ports_per_bank=4)),
            ("OLE_4_64_4ports_4banks", ole_4_64(banked=True)),
            ("EOE_4_64_4ports_4banks", eoe_4_64(banked=True)),
        ),
        workloads,
        max_uops,
        warmup_uops,
        cache,
    )


# --------------------------------------------------------------------------- ablations
def ablation_fpc_vector(
    workloads: Iterable[Workload] | None = None,
    max_uops: int = 20_000,
) -> ExperimentResult:
    """FPC ablation (Section 4.2): probabilistic vs deterministic confidence counters.

    Reported values are the *accuracy* of used predictions per workload for each
    confidence scheme; coverage is recorded in the companion series.  The paper's point
    is that FPC pushes accuracy high enough for squash-based recovery at a modest
    coverage cost.
    """
    selected = _suite(workloads)
    result = ExperimentResult(
        experiment_id="ablation_fpc",
        title="Confidence estimation ablation: FPC vs deterministic 3-bit counters",
        value_kind="ratio",
        notes="FPC (paper vector) should give near-1.0 accuracy; deterministic counters "
        "trade accuracy for coverage.",
    )
    schemes = (
        ("FPC accuracy", PAPER_FPC_VECTOR, "accuracy"),
        ("FPC coverage", PAPER_FPC_VECTOR, "coverage"),
        ("3-bit accuracy", DETERMINISTIC_3BIT_VECTOR, "accuracy"),
        ("3-bit coverage", DETERMINISTIC_3BIT_VECTOR, "coverage"),
    )
    evaluations: dict[tuple[str, int], object] = {}
    for label, vector, metric in schemes:
        values = {}
        for workload in selected:
            key = (str(vector), id(workload))
            if key not in evaluations:
                predictor = VTAGE2DStrideHybrid(
                    vtage=VTAGEPredictor(fpc_vector=vector, seed=0x11),
                    stride=TwoDeltaStridePredictor(fpc_vector=vector, seed=0x22),
                )
                evaluations[key] = evaluate_predictor(predictor, workload, max_uops=max_uops)
            evaluation = evaluations[key]
            values[workload.name] = getattr(evaluation, metric)
        result.series.append(ExperimentSeries(label=label, values=values))
    return result


#: Registry of every experiment regenerated by the benchmark harness.
EXPERIMENTS = {
    "fig2_early_exec_share": fig2_early_execution_share,
    "fig4_late_exec_share": fig4_late_execution_share,
    "table3_baseline_ipc": table3_baseline_ipc,
    "fig6_vp_speedup": fig6_vp_speedup,
    "fig7_issue_width": fig7_issue_width,
    "fig8_iq_size": fig8_iq_size,
    "fig10_prf_banks": fig10_prf_banks,
    "fig11_levt_ports": fig11_levt_ports,
    "fig12_overall": fig12_overall,
    "fig13_variants": fig13_variants,
    "ablation_fpc": ablation_fpc_vector,
}
