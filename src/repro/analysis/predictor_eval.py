"""Offline (trace-level) value-predictor evaluation.

For predictor-centric studies — comparing predictor families, ablating the FPC
confidence vector, sizing tables — the full pipeline model is unnecessary: coverage and
accuracy only depend on the committed value stream and the global branch history.  This
harness walks a workload's architectural trace, performs a fetch-time lookup and a
commit-time training call per eligible µ-op (keeping branch history up to date), and
reports the predictor's own statistics.  The same methodology underlies Table 2 and the
confidence discussion of Section 4.2.

The committed stream comes from the shared trace cache (:mod:`repro.trace`), so a
predictor sweep emulates each workload once and every predictor replays the capture —
and with ``REPRO_TRACE_STORE`` set, repeated study sessions skip emulation entirely.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from itertools import islice

from repro.bpu.history import GlobalHistory
from repro.isa.emulator import Emulator
from repro.trace.cache import shared_trace_cache, trace_cache_enabled
from repro.vp.base import ValuePredictor
from repro.workloads.suite import Workload


@dataclass
class PredictorEvaluation:
    """Outcome of an offline predictor evaluation on one workload."""

    predictor_name: str
    workload_name: str
    eligible_uops: int
    coverage: float
    accuracy: float
    mispredictions: int
    storage_kilobytes: float

    def to_dict(self) -> dict:
        """JSON-safe dict form (mirrors ``SimulationResult.to_dict``)."""
        return asdict(self)


def evaluate_predictor(
    predictor: ValuePredictor,
    workload: Workload,
    max_uops: int = 20_000,
    trace=None,
) -> PredictorEvaluation:
    """Run ``predictor`` over the committed trace of ``workload``.

    The predictor is looked up at "fetch" (trace order) and trained immediately with the
    architectural result, which is equivalent to commit-time training on a machine with
    no in-flight aliasing — an optimistic but standard trace-level approximation.

    The committed stream is replayed from the shared trace cache (pass ``trace=`` to
    supply an explicit :class:`~repro.trace.encoding.CapturedTrace`); set
    ``REPRO_TRACE_CACHE=0`` to emulate inline instead.
    """
    history = GlobalHistory()
    if trace is None and trace_cache_enabled():
        trace = shared_trace_cache.trace_for_length(workload, max_uops)
    if trace is not None:
        stream = islice(trace.replay(), max_uops)
    else:
        stream = Emulator(workload.program, state=workload.make_state()).run(max_uops)
    eligible = 0
    for inst in stream:
        uop = inst.uop
        if uop.is_conditional_branch:
            history.push(inst.taken)
        if not uop.vp_eligible or inst.result is None:
            continue
        eligible += 1
        prediction = predictor.lookup(inst.pc, history)
        predictor.validate_and_train(inst.pc, inst.result, prediction)
    stats = predictor.stats
    return PredictorEvaluation(
        predictor_name=predictor.name,
        workload_name=workload.name,
        eligible_uops=eligible,
        coverage=stats.coverage,
        accuracy=stats.accuracy,
        mispredictions=stats.incorrect_used,
        storage_kilobytes=predictor.storage_kilobytes(),
    )
