"""Experiment result containers and plain-text report formatting.

The benchmark harness regenerates each table/figure of the paper as an
:class:`ExperimentResult`: a set of named series (one per machine configuration or per
bar group) with one value per workload, plus a summary row (geometric mean for
speedups, arithmetic mean for coverage ratios).  :func:`format_table` renders it as the
ASCII table printed by the benchmark suite and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import arithmetic_mean, geometric_mean


@dataclass
class ExperimentSeries:
    """One line/bar-group of a figure: a label plus one value per workload."""

    label: str
    values: dict[str, float] = field(default_factory=dict)

    def summary(self, kind: str = "geomean") -> float:
        """Summary statistic across workloads (``geomean`` or ``mean``)."""
        values = list(self.values.values())
        if kind == "geomean":
            return geometric_mean(values)
        return arithmetic_mean(values)


@dataclass
class ExperimentResult:
    """A regenerated table or figure."""

    experiment_id: str
    title: str
    series: list[ExperimentSeries] = field(default_factory=list)
    value_kind: str = "speedup"  # "speedup", "ipc" or "ratio"
    baseline_label: str = ""
    notes: str = ""

    @property
    def workloads(self) -> list[str]:
        """Workload names appearing in any series, preserving first-seen order."""
        seen: dict[str, None] = {}
        for series in self.series:
            for name in series.values:
                seen.setdefault(name)
        return list(seen)

    def series_by_label(self, label: str) -> ExperimentSeries:
        """Look up a series by its label."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in {self.experiment_id}")

    def summary_kind(self) -> str:
        """Which summary statistic suits this experiment's value kind."""
        return "geomean" if self.value_kind in ("speedup", "ipc") else "mean"


def format_table(result: ExperimentResult, precision: int = 3) -> str:
    """Render an :class:`ExperimentResult` as a fixed-width ASCII table."""
    workloads = result.workloads
    label_width = max([len("workload")] + [len(name) for name in workloads]) + 2
    column_width = max([10] + [len(series.label) + 2 for series in result.series])

    lines = [f"{result.experiment_id}: {result.title}"]
    if result.baseline_label:
        lines.append(f"(values are {result.value_kind}s relative to {result.baseline_label})")
    header = "workload".ljust(label_width) + "".join(
        series.label.rjust(column_width) for series in result.series
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in workloads:
        row = name.ljust(label_width)
        for series in result.series:
            value = series.values.get(name)
            cell = "-" if value is None else f"{value:.{precision}f}"
            row += cell.rjust(column_width)
        lines.append(row)
    lines.append("-" * len(header))
    summary_kind = result.summary_kind()
    summary_row = summary_kind.ljust(label_width)
    for series in result.series:
        summary_row += f"{series.summary(summary_kind):.{precision}f}".rjust(column_width)
    lines.append(summary_row)
    if result.notes:
        lines.append(result.notes)
    return "\n".join(lines)
